module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Device = Ghost_device.Device
module Trace = Ghost_device.Trace
module Public_store = Ghost_public.Public_store

(** Initial loading.

    The paper assumes the USB device is loaded in a secure setting
    (Section 2), so loading is host-side OCaml: it splits each table
    into its visible part (shipped to the {!Public_store}) and its
    hidden part (column stores written to the device Flash), replicates
    the dense primary keys, and precomputes every index structure —
    SKTs for all non-leaf tables, sorted climbing indexes on hidden
    attribute columns, dense key climbing indexes for all non-root
    tables — plus the statistics metadata.

    Flash statistics are reset after loading so that query-time
    accounting starts from zero; storage sizes remain available through
    {!Catalog.storage}. *)

exception Load_error of string

val load :
  ?device_config:Device.config ->
  ?index_hidden_fks:bool ->
  trace:Trace.t ->
  Schema.t ->
  (string * Relation.tuple list) list ->
  Catalog.t * Public_store.t
(** [index_hidden_fks] (default false) also builds sorted climbing
    indexes on hidden foreign-key columns. Raises {!Load_error} when a
    table is missing, keys are not dense 1..N, or a foreign key
    dangles. *)
