module Value = Ghost_kernel.Value
module Codec = Ghost_kernel.Codec
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram

type t = {
  flash : Flash.t;
  table : string;
  levels : string array;
  hidden_cols : (string * Value.ty) array;
  record_bytes : int;
  records_per_page : int;
  mutable full_pages : int list;  (* reversed *)
  mutable tail : string list;  (* encoded records of the tail page, reversed *)
  mutable tail_page : int option;  (* current (latest) program of the tail *)
  mutable count : int;
  mutable dead_bytes : int;  (* superseded tail programs *)
}

let create flash ~table ~levels ~hidden_cols =
  let record_bytes =
    (4 * List.length levels)
    + List.fold_left (fun acc (_, ty) -> acc + Value.ty_width ty) 0 hidden_cols
  in
  let page = (Flash.geometry flash).Flash.page_size in
  if record_bytes > page then invalid_arg "Delta_log.create: record exceeds a page";
  {
    flash;
    table;
    levels = Array.of_list levels;
    hidden_cols = Array.of_list hidden_cols;
    record_bytes;
    records_per_page = page / record_bytes;
    full_pages = [];
    tail = [];
    tail_page = None;
    count = 0;
    dead_bytes = 0;
  }

let table t = t.table
let count t = t.count
let record_bytes t = t.record_bytes

let dead_bytes t = t.dead_bytes

let size_bytes t =
  (List.length t.full_pages * t.records_per_page * t.record_bytes)
  + (List.length t.tail * t.record_bytes)

let encode t ~ids ~hidden =
  if Array.length ids <> Array.length t.levels then
    invalid_arg "Delta_log.append: id vector misaligned with levels";
  if Array.length hidden <> Array.length t.hidden_cols then
    invalid_arg "Delta_log.append: hidden values misaligned";
  let buf = Buffer.create t.record_bytes in
  Array.iter
    (fun id ->
       let b = Bytes.create 4 in
       Codec.put_u32 b 0 id;
       Buffer.add_bytes buf b)
    ids;
  Array.iteri
    (fun i v ->
       let _, ty = t.hidden_cols.(i) in
       Buffer.add_bytes buf (Value.encode ty v))
    hidden;
  Buffer.contents buf

let append t ~ids ~hidden =
  let record = encode t ~ids ~hidden in
  t.tail <- record :: t.tail;
  t.count <- t.count + 1;
  (* Program the tail as a fresh page (no in-place writes); the
     previous tail program becomes dead space until reorganization. *)
  (match t.tail_page with
   | Some _ -> t.dead_bytes <- t.dead_bytes + ((List.length t.tail - 1) * t.record_bytes)
   | None -> ());
  let data = String.concat "" (List.rev t.tail) in
  let page = Flash.append t.flash (Bytes.of_string data) in
  if List.length t.tail = t.records_per_page then begin
    t.full_pages <- page :: t.full_pages;
    t.tail <- [];
    t.tail_page <- None
  end
  else t.tail_page <- Some page

type row = {
  ids : int array;
  hidden : Value.t array;
}

let decode t b off =
  let n_levels = Array.length t.levels in
  let ids = Array.init n_levels (fun i -> Codec.get_u32 b (off + (4 * i))) in
  let pos = ref (off + (4 * n_levels)) in
  let hidden =
    Array.map
      (fun (_, ty) ->
         let v = Value.decode ty b !pos in
         pos := !pos + Value.ty_width ty;
         v)
      t.hidden_cols
  in
  { ids; hidden }

let scan ?ram t f =
  ignore ram;
  let read_page page n_records =
    let b = Flash.read t.flash ~page ~off:0 ~len:(n_records * t.record_bytes) in
    for i = 0 to n_records - 1 do
      f (decode t b (i * t.record_bytes))
    done
  in
  List.iter
    (fun page -> read_page page t.records_per_page)
    (List.rev t.full_pages);
  match t.tail_page with
  | Some page -> read_page page (List.length t.tail)
  | None -> ()

let hidden_assoc t row =
  Array.to_list (Array.mapi (fun i (name, _) -> (name, row.hidden.(i))) t.hidden_cols)

let hidden_value t row col =
  let rec loop i =
    if i >= Array.length t.hidden_cols then raise Not_found
    else if fst t.hidden_cols.(i) = col then row.hidden.(i)
    else loop (i + 1)
  in
  loop 0
