module Value = Ghost_kernel.Value
module Predicate = Ghost_relation.Predicate

(** Column statistics, collected at load time and kept as catalog
    metadata (they fit the secure chip's internal storage). The
    optimizer's selectivity estimates — the input to the Pre- vs
    Post-filtering decision — come from here. *)

type t

val of_values : Value.t array -> t
(** Collects count, distinct count, min/max, and either an exact
    value-frequency table (few distinct values) or an equi-depth
    histogram. *)

val count : t -> int
val distinct : t -> int

val selectivity : t -> Predicate.comparison -> float
(** Estimated fraction of rows satisfying the comparison, in [0, 1]. *)

val estimate_rows : t -> Predicate.comparison -> int
(** [selectivity * count], rounded. *)
