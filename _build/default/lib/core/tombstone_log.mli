module Flash = Ghost_flash.Flash

(** Append-only deletion log.

    Deletes face the same NAND constraint as inserts: the SKT rows and
    climbing-index lists of a deleted tuple cannot be rewritten in
    place. Instead the deleted root id is appended here; at query time
    the executor loads the (small) log into a sorted RAM array and
    filters candidates against it. Offline reorganization compacts the
    database and empties the log.

    Like inserts, deletes apply to the schema root only. *)

type t

val create : Flash.t -> table:string -> t
val table : t -> string
val count : t -> int
val size_bytes : t -> int
val dead_bytes : t -> int

val append : t -> int list -> unit
(** Records deletions (same tail-page re-programming discipline as
    {!Delta_log}). Duplicates are the caller's responsibility. *)

val mem : t -> int -> bool
(** Host-side membership (validation); not Flash-metered. *)

val load_sorted : t -> int array
(** Query-time load: reads the whole log off Flash (metered) and
    returns the ids sorted. *)
