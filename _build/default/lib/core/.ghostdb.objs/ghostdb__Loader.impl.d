lib/core/loader.ml: Array Catalog Col_stats Ghost_device Ghost_flash Ghost_kernel Ghost_public Ghost_relation Ghost_store Hashtbl List Map Option Printf
