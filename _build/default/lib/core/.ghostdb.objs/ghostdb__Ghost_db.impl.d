lib/core/ghost_db.ml: Array Catalog Exec Ghost_device Ghost_kernel Ghost_public Ghost_relation Ghost_sql Insert Loader Marshal Planner Privacy Reorganize String
