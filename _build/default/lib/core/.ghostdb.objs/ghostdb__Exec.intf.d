lib/core/exec.mli: Catalog Format Ghost_device Ghost_kernel Ghost_public Plan
