lib/core/privacy.ml: Format Ghost_device List Printf
