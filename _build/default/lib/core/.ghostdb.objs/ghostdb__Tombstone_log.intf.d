lib/core/tombstone_log.mli: Ghost_flash
