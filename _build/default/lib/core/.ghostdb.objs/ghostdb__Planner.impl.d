lib/core/planner.ml: Catalog Cost Float Ghost_relation Ghost_sql List Plan String
