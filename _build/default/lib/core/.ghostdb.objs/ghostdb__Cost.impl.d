lib/core/cost.ml: Catalog Col_stats Float Format Ghost_bloom Ghost_device Ghost_flash Ghost_kernel Ghost_relation Ghost_sql Ghost_store List Plan Printf String
