lib/core/reorganize.ml: Array Catalog Delta_log Fun Ghost_kernel Ghost_public Ghost_relation Ghost_store Hashtbl List Printf Tombstone_log
