lib/core/plan.ml: Buffer Ghost_relation Ghost_sql List Printf String
