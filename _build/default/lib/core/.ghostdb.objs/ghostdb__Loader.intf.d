lib/core/loader.mli: Catalog Ghost_device Ghost_public Ghost_relation
