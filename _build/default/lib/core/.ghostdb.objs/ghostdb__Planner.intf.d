lib/core/planner.mli: Catalog Cost Ghost_sql Plan
