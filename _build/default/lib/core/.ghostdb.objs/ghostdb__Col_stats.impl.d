lib/core/col_stats.ml: Array Float Ghost_kernel Ghost_relation List Map Option
