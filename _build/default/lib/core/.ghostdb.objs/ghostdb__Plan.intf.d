lib/core/plan.mli: Ghost_relation Ghost_sql
