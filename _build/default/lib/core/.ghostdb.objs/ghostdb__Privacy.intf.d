lib/core/privacy.mli: Format Ghost_device
