lib/core/insert.mli: Catalog Ghost_public Ghost_relation
