lib/core/catalog.mli: Col_stats Delta_log Format Ghost_device Ghost_relation Ghost_store Hashtbl Tombstone_log
