lib/core/delta_log.ml: Array Buffer Bytes Ghost_device Ghost_flash Ghost_kernel List String
