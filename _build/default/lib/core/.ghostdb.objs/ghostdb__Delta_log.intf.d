lib/core/delta_log.mli: Ghost_device Ghost_flash Ghost_kernel
