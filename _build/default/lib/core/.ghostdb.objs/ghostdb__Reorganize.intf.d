lib/core/reorganize.mli: Catalog Ghost_public Ghost_relation
