lib/core/cost.mli: Catalog Format Ghost_sql Plan
