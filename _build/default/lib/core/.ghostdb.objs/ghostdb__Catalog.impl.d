lib/core/catalog.ml: Col_stats Delta_log Format Ghost_device Ghost_relation Ghost_store Hashtbl List Tombstone_log
