lib/core/ghost_db.mli: Catalog Cost Exec Ghost_device Ghost_kernel Ghost_public Ghost_relation Ghost_sql Plan Privacy
