lib/core/insert.ml: Array Catalog Delta_log Ghost_device Ghost_kernel Ghost_public Ghost_relation Ghost_store Hashtbl List Printf Tombstone_log
