lib/core/tombstone_log.ml: Bytes Ghost_flash Ghost_kernel Hashtbl List
