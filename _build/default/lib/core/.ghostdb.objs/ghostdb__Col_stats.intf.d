lib/core/col_stats.mli: Ghost_kernel Ghost_relation
