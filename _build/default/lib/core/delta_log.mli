module Value = Ghost_kernel.Value
module Flash = Ghost_flash.Flash

(** Append-only delta log: inserts after the initial load.

    NAND Flash forbids in-place writes, so freshly inserted root-table
    tuples cannot be folded into the SKT / climbing-index structures
    (those are rebuilt offline, in the secure setting, like the initial
    load). Instead each insert appends one fixed-width record — the
    tuple's full SKT-style id vector plus its own hidden column values
    — to a log on the device Flash. Query execution scans the (small)
    log next to the indexed main structures; see {!Exec}.

    Only the schema root accepts inserts in this reproduction: new
    facts referencing existing dimension rows, the natural OLTP case.
    Dimension inserts and deletes are future work (documented in
    DESIGN.md). *)

type t

val create :
  Flash.t ->
  table:string ->
  levels:string list ->
  hidden_cols:(string * Value.ty) list ->
  t
(** [levels] — the subtree preorder (the SKT level layout of the
    table); [hidden_cols] — the table's own hidden columns, in
    declaration order. *)

val table : t -> string
val count : t -> int
val record_bytes : t -> int
val size_bytes : t -> int
(** Live bytes of the log (full pages + current tail). *)

val dead_bytes : t -> int
(** Bytes of superseded tail programs — the write amplification of the
    no-rewrite discipline, reclaimed only by offline reorganization. *)

val append : t -> ids:int array -> hidden:Value.t array -> unit
(** Appends one record; programs a Flash page per page-full of records
    (partially filled tail pages are reprogrammed into fresh pages, as
    the no-rewrite discipline demands — the write amplification is
    metered). Raises [Invalid_argument] on misaligned input. *)

type row = {
  ids : int array;  (** aligned with [levels] *)
  hidden : Value.t array;  (** aligned with [hidden_cols] *)
}

val scan :
  ?ram:Ghost_device.Ram.t -> t -> (row -> unit) -> unit
(** Sequential metered read of the whole log. *)

val hidden_value : t -> row -> string -> Value.t
(** [hidden_value t row col] — the record's value of one of the
    table's own hidden columns. Raises [Not_found]. *)

val hidden_assoc : t -> row -> (string * Value.t) list
(** All of the record's own hidden column values, by name. *)
