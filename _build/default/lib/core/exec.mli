module Value = Ghost_kernel.Value
module Device = Ghost_device.Device
module Public_store = Ghost_public.Public_store

(** The device-side query executor.

    Runs a {!Plan.t} over the catalog: Pre-filter sources are merged
    and intersected into candidate root ids ("Merge+Index" in the
    demo's Figure 6), the SKT is probed for surviving candidates, Bloom
    filters and hidden-column checks post-filter them, visible
    projection streams are joined (in RAM when they fit, by external
    sort on the scratch Flash otherwise), and result tuples leave only
    through the secure display channel.

    Every stage charges the device clock and the RAM arena, and
    reports the per-operator statistics the demo GUI shows (tuples
    processed, local RAM consumption, processing time). *)

type op_stats = {
  op_label : string;
  tuples_in : int;
  tuples_out : int;
  ram_peak : int;  (** bytes, high-water inside the operator *)
  usage : Device.usage;
}

type result = {
  rows : Value.t array list;  (** projected tuples, order unspecified *)
  row_count : int;
  ops : op_stats list;  (** in execution order *)
  total : Device.usage;
  elapsed_us : float;  (** simulated device time for the whole plan *)
  ram_peak : int;
  bloom_fp_candidates : int;
      (** candidates admitted by a Bloom filter and later rejected by
          the exact verification join (0 unless Post-filtering ran) *)
}

exception Exec_error of string

val run :
  ?exact_post:bool ->
  ?bloom_fpr:float ->
  Catalog.t ->
  Public_store.t ->
  Plan.t ->
  result
(** [exact_post] (default true) joins a verification stream for every
    Post-filtered table so Bloom false positives never reach the
    result; switching it off gives the pure-probabilistic variant.
    [bloom_fpr] (default 0.01) is the target false-positive rate used
    to size Bloom filters (subject to the RAM budget). *)

val pp_ops : Format.formatter -> op_stats list -> unit
