module Trace = Ghost_device.Trace

(** Privacy auditor: machine-checks the paper's guarantee — "the only
    information revealed to a potential spy is which queries you pose
    and the public data you access".

    The audit walks the boundary trace and flags any event that would
    contradict the guarantee: payloads other than protocol acks leaving
    the device on a spy-visible link, or result tuples travelling
    anywhere but the secure display channel. The property-based test
    suite runs this over randomized queries and plans. *)

type verdict = {
  ok : bool;
  violations : string list;
  outbound_payload_bytes : int;  (** non-ack device bytes a spy saw *)
  inbound_bytes : int;  (** visible data that entered the device *)
  queries_leaked : string list;  (** the (expected) query-text leak *)
}

val audit : Trace.t -> verdict
val pp : Format.formatter -> verdict -> unit
