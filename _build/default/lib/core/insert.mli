module Relation = Ghost_relation.Relation
module Public_store = Ghost_public.Public_store

(** Inserts after the initial load.

    Only the schema root (the fact table) accepts inserts: a new fact
    references {e existing} dimension rows through its foreign keys.
    The visible part of each tuple goes to the public store; the hidden
    part, plus the tuple's precomputed SKT-style id vector (obtained by
    reading the dimension SKTs on the device), is appended to the
    table's {!Delta_log}. Indexes and SKTs are not rewritten — NAND
    forbids it — so queries scan the log next to the main structures
    until an offline reorganization (= reload) folds it in. *)

exception Insert_error of string

val insert_root :
  Catalog.t -> Public_store.t -> Relation.tuple list -> unit
(** Appends full tuples to the schema root. Keys must densely continue
    the existing ids; foreign keys must reference loaded dimension
    rows. Raises {!Insert_error} on any violation (nothing is applied
    from a failing batch). *)

val delete_root : Catalog.t -> Public_store.t -> int list -> unit
(** Tombstones root tuples by id: the ids are appended to the deletion
    log and the visible rows leave the public store. Raises
    {!Insert_error} on unknown, duplicate, or already-deleted ids
    (nothing is applied from a failing batch). *)
