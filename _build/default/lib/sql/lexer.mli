(** Hand-written lexer for the SQL subset. Keywords are recognized
    case-insensitively; identifiers keep their spelling. *)

type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Kw of string * string
      (** uppercased keyword (CREATE, SELECT, HIDDEN, ...) and its raw
          spelling, so schema identifiers that collide with keywords
          ([Date]) keep their case *)
  | Symbol of string  (** one of ( ) , ; . * = <> < <= > >= *)
  | Eof

exception Lex_error of { position : int; message : string }

val tokenize : string -> token list
val token_to_string : token -> string
