lib/sql/postproc.mli: Ghost_kernel
