lib/sql/aggregate.mli: Ast Ghost_kernel
