lib/sql/aggregate.ml: Array Ast Float Ghost_kernel Hashtbl List
