lib/sql/ast.mli:
