lib/sql/ast.ml: List Printf String
