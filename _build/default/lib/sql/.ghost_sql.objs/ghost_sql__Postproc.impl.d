lib/sql/postproc.ml: Array Ghost_kernel List
