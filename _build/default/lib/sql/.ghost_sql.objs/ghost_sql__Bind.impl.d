lib/sql/bind.ml: Aggregate Ast Float Ghost_kernel Ghost_relation Hashtbl List Option Parser Printf String
