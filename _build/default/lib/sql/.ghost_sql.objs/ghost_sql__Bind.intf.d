lib/sql/bind.mli: Aggregate Ast Ghost_relation
