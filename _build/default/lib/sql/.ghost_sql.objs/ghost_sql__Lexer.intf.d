lib/sql/lexer.mli:
