(** Abstract syntax for the SQL subset GhostDB accepts: [CREATE TABLE]
    with the extra [HIDDEN] keyword, and conjunctive
    select-project-join queries. The paper stresses that query text
    needs {e no} changes — only the schema declarations do. *)

type ty_ast =
  | Ty_integer
  | Ty_float
  | Ty_date
  | Ty_char of int

type ddl_column = {
  col_name : string;
  col_ty : ty_ast;
  primary_key : bool;
  references : string option;  (** referenced table *)
  hidden : bool;
}

type create_table = {
  table_name : string;
  ddl_columns : ddl_column list;
}

type literal =
  | L_int of int
  | L_float of float
  | L_string of string  (** also the surface form of date literals *)

type col_ref = {
  qualifier : string option;  (** table name or alias *)
  column : string;
}

type cmp_op = Op_eq | Op_ne | Op_lt | Op_le | Op_gt | Op_ge

type agg_fn = Count | Sum | Avg | Min | Max

type projection_item =
  | P_col of col_ref
  | P_agg of agg_fn * col_ref option
      (** [P_agg (Count, None)] is the star-count; every other
          aggregate takes a column *)

type condition =
  | C_cmp of col_ref * cmp_op * literal
  | C_between of col_ref * literal * literal
  | C_in of col_ref * literal list
  | C_like of col_ref * string  (** pattern as written, e.g. ["abc%"] *)
  | C_join of col_ref * col_ref  (** equi-join *)

type select = {
  projections : projection_item list;
  from : (string * string option) list;  (** (table, alias) *)
  where : condition list;  (** conjunction *)
  group_by : col_ref list;
  order_by : (col_ref * bool) list;  (** (column, descending) *)
  limit : int option;
}

type statement =
  | Create_table of create_table
  | Select of select

val col_ref_to_string : col_ref -> string
val agg_fn_name : agg_fn -> string
val projection_item_to_string : projection_item -> string
val literal_to_string : literal -> string
val cmp_op_to_string : cmp_op -> string
val condition_to_string : condition -> string
val select_to_string : select -> string
