type token =
  | Ident of string
  | Int_lit of int
  | Float_lit of float
  | String_lit of string
  | Kw of string * string
  | Symbol of string
  | Eof

exception Lex_error of { position : int; message : string }

let keywords = [
  "CREATE"; "TABLE"; "SELECT"; "FROM"; "WHERE"; "AND"; "BETWEEN"; "IN";
  "PRIMARY"; "KEY"; "REFERENCES"; "HIDDEN"; "INTEGER"; "INT"; "FLOAT";
  "DATE"; "CHAR"; "AS"; "NOT"; "NULL"; "COUNT"; "SUM"; "AVG"; "MIN"; "MAX";
  "GROUP"; "BY"; "ORDER"; "ASC"; "DESC"; "LIMIT"; "LIKE";
]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let error pos fmt =
  Printf.ksprintf (fun message -> raise (Lex_error { position = pos; message })) fmt

let tokenize src =
  let n = String.length src in
  let rec loop i acc =
    if i >= n then List.rev (Eof :: acc)
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then loop (i + 1) acc
      else if c = '-' && i + 1 < n && src.[i + 1] = '-' then begin
        (* line comment *)
        let j = ref i in
        while !j < n && src.[!j] <> '\n' do incr j done;
        loop !j acc
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident_char src.[!j] do incr j done;
        let word = String.sub src i (!j - i) in
        let upper = String.uppercase_ascii word in
        let tok = if List.mem upper keywords then Kw (upper, word) else Ident word in
        loop !j (tok :: acc)
      end
      else if is_digit c
              || (c = '-' && i + 1 < n && is_digit src.[i + 1]) then begin
        let j = ref (if c = '-' then i + 1 else i) in
        while !j < n && is_digit src.[!j] do incr j done;
        let is_float =
          !j + 1 < n && src.[!j] = '.' && is_digit src.[!j + 1]
        in
        if is_float then begin
          incr j;
          while !j < n && is_digit src.[!j] do incr j done
        end;
        let text = String.sub src i (!j - i) in
        let tok =
          if is_float then Float_lit (float_of_string text)
          else
            match int_of_string_opt text with
            | Some v -> Int_lit v
            | None -> error i "invalid number %S" text
        in
        loop !j (tok :: acc)
      end
      else if c = '\'' then begin
        let buf = Buffer.create 16 in
        let rec scan j =
          if j >= n then error i "unterminated string literal"
          else if src.[j] = '\'' then
            if j + 1 < n && src.[j + 1] = '\'' then begin
              Buffer.add_char buf '\'';
              scan (j + 2)
            end
            else j + 1
          else begin
            Buffer.add_char buf src.[j];
            scan (j + 1)
          end
        in
        let next = scan (i + 1) in
        loop next (String_lit (Buffer.contents buf) :: acc)
      end
      else begin
        let two = if i + 1 < n then String.sub src i 2 else "" in
        match two with
        | "<>" | "<=" | ">=" | "!=" ->
          let sym = if two = "!=" then "<>" else two in
          loop (i + 2) (Symbol sym :: acc)
        | _ ->
          (match c with
           | '(' | ')' | ',' | ';' | '.' | '*' | '=' | '<' | '>' ->
             loop (i + 1) (Symbol (String.make 1 c) :: acc)
           | _ -> error i "unexpected character %C" c)
      end
  in
  loop 0 []

let token_to_string = function
  | Ident s -> Printf.sprintf "identifier %S" s
  | Int_lit i -> Printf.sprintf "integer %d" i
  | Float_lit f -> Printf.sprintf "float %g" f
  | String_lit s -> Printf.sprintf "string %S" s
  | Kw (k, _) -> k
  | Symbol s -> Printf.sprintf "%S" s
  | Eof -> "end of input"
