module Value = Ghost_kernel.Value

(** ORDER BY / LIMIT applied to final output rows — shared by the
    device executor, the baselines and the reference evaluator so the
    semantics cannot drift. *)

val order_rows :
  order_by:(int * bool) list -> Value.t array list -> Value.t array list
(** Stable sort by the given (output index, descending) keys, leftmost
    key most significant; {!Value.compare} per key. Rows equal on all
    keys keep their relative order. *)

val apply :
  order_by:(int * bool) list ->
  limit:int option ->
  Value.t array list ->
  Value.t array list
(** [order_rows] then keep the first [limit] rows. *)
