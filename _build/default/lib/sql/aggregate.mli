module Value = Ghost_kernel.Value

(** Aggregation semantics, shared by the device executor and the
    trusted reference evaluator.

    A bound aggregate query first runs as an ordinary SPJ plan
    producing {e base rows} — the GROUP BY columns followed by the
    aggregate argument columns — and is then folded by {!apply}. *)

type fn =
  | Count  (** the star-count when the argument is [None] *)
  | Sum
  | Avg
  | Min
  | Max

type agg = {
  a_fn : fn;
  a_arg : (string * string) option;  (** resolved argument column *)
  a_arg_pos : int option;  (** its position in the base row *)
}

type spec = {
  group_by : (string * string) list;  (** base-row positions 0..k-1 *)
  aggs : agg list;
  output : [ `Group of int | `Agg of int ] list;
      (** how to build an output row in SELECT-list order *)
}

val of_ast_fn : Ast.agg_fn -> fn
val fn_name : fn -> string

val apply : spec -> Value.t array list -> Value.t array list
(** Groups the base rows on the first [List.length group_by] values and
    folds each aggregate. SQL semantics: [COUNT] never counts NULLs
    (except the star-count); [SUM]/[AVG]/[MIN]/[MAX] ignore NULLs and
    yield NULL on an empty set; with no GROUP BY and at least one
    aggregate, exactly one row is returned even for empty input.
    Output rows follow [output]; group order is unspecified. *)
