module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate

(** Name resolution and typing: turns parsed ASTs into schema objects
    and validated queries. *)

exception Bind_error of string

val ddl_to_schema : Ast.create_table list -> Schema.t
(** Builds the tree-schema database from [CREATE TABLE] statements.
    Exactly one [PRIMARY KEY] column per table (INTEGER) is required;
    [HIDDEN] markers become {!Ghost_relation.Column.Hidden}. Raises
    {!Bind_error} (or {!Schema.Not_a_tree}) on invalid input. *)

type query = {
  tables : string list;  (** FROM tables, resolved (no aliases) *)
  projections : (string * string) list;
      (** (table, column) base columns the SPJ engine must produce, in
          order. For an aggregate query these are the GROUP BY columns
          followed by the aggregate argument columns; the final output
          is shaped by [aggregate]. *)
  selections : Predicate.t list;
  join_edges : (string * string) list;
      (** (parent_table, child_table) foreign-key edges asserted by the
          WHERE clause *)
  aggregate : Aggregate.spec option;
      (** present when the SELECT list contains aggregates or the query
          has a GROUP BY *)
  order_by : (int * bool) list;
      (** (output column index, descending) — applied to the final
          output rows *)
  limit : int option;
  text : string;  (** the original surface form, for the spy trace *)
}

val bind_select : Schema.t -> Ast.select -> query
(** Resolves aliases and unqualified columns, coerces literals to the
    column type (strings become dates when the column is [DATE]),
    checks every join condition is a foreign-key edge of the schema
    tree, and checks the FROM tables are connected by the asserted
    edges. Raises {!Bind_error}. *)

val bind : Schema.t -> string -> query
(** [bind schema sql] — parse + bind in one step. *)
