type ty_ast =
  | Ty_integer
  | Ty_float
  | Ty_date
  | Ty_char of int

type ddl_column = {
  col_name : string;
  col_ty : ty_ast;
  primary_key : bool;
  references : string option;
  hidden : bool;
}

type create_table = {
  table_name : string;
  ddl_columns : ddl_column list;
}

type literal =
  | L_int of int
  | L_float of float
  | L_string of string

type col_ref = {
  qualifier : string option;
  column : string;
}

type cmp_op = Op_eq | Op_ne | Op_lt | Op_le | Op_gt | Op_ge

type agg_fn = Count | Sum | Avg | Min | Max

type projection_item =
  | P_col of col_ref
  | P_agg of agg_fn * col_ref option

type condition =
  | C_cmp of col_ref * cmp_op * literal
  | C_between of col_ref * literal * literal
  | C_in of col_ref * literal list
  | C_like of col_ref * string
  | C_join of col_ref * col_ref

type select = {
  projections : projection_item list;
  from : (string * string option) list;
  where : condition list;
  group_by : col_ref list;
  order_by : (col_ref * bool) list;
  limit : int option;
}

type statement =
  | Create_table of create_table
  | Select of select

let col_ref_to_string r =
  match r.qualifier with
  | Some q -> q ^ "." ^ r.column
  | None -> r.column

let literal_to_string = function
  | L_int i -> string_of_int i
  | L_float f -> Printf.sprintf "%g" f
  | L_string s -> Printf.sprintf "'%s'" s

let agg_fn_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

let projection_item_to_string = function
  | P_col r -> col_ref_to_string r
  | P_agg (f, None) -> Printf.sprintf "%s(*)" (agg_fn_name f)
  | P_agg (f, Some r) -> Printf.sprintf "%s(%s)" (agg_fn_name f) (col_ref_to_string r)

let cmp_op_to_string = function
  | Op_eq -> "="
  | Op_ne -> "<>"
  | Op_lt -> "<"
  | Op_le -> "<="
  | Op_gt -> ">"
  | Op_ge -> ">="

let condition_to_string = function
  | C_cmp (r, op, l) ->
    Printf.sprintf "%s %s %s" (col_ref_to_string r) (cmp_op_to_string op)
      (literal_to_string l)
  | C_between (r, lo, hi) ->
    Printf.sprintf "%s BETWEEN %s AND %s" (col_ref_to_string r) (literal_to_string lo)
      (literal_to_string hi)
  | C_in (r, ls) ->
    Printf.sprintf "%s IN (%s)" (col_ref_to_string r)
      (String.concat ", " (List.map literal_to_string ls))
  | C_like (r, pat) -> Printf.sprintf "%s LIKE '%s'" (col_ref_to_string r) pat
  | C_join (a, b) ->
    Printf.sprintf "%s = %s" (col_ref_to_string a) (col_ref_to_string b)

let select_to_string s =
  Printf.sprintf "SELECT %s FROM %s%s%s"
    (String.concat ", " (List.map projection_item_to_string s.projections))
    (String.concat ", "
       (List.map
          (fun (t, alias) ->
             match alias with
             | Some a -> t ^ " " ^ a
             | None -> t)
          s.from))
    (match s.where with
     | [] -> ""
     | conds ->
       " WHERE " ^ String.concat " AND " (List.map condition_to_string conds))
    (match s.group_by with
     | [] -> ""
     | cols -> " GROUP BY " ^ String.concat ", " (List.map col_ref_to_string cols))
  ^ (match s.order_by with
     | [] -> ""
     | cols ->
       " ORDER BY "
       ^ String.concat ", "
           (List.map
              (fun (r, desc) -> col_ref_to_string r ^ (if desc then " DESC" else ""))
              cols))
  ^ (match s.limit with
     | None -> ""
     | Some n -> Printf.sprintf " LIMIT %d" n)
