module Value = Ghost_kernel.Value

type fn =
  | Count
  | Sum
  | Avg
  | Min
  | Max

type agg = {
  a_fn : fn;
  a_arg : (string * string) option;
  a_arg_pos : int option;
}

type spec = {
  group_by : (string * string) list;
  aggs : agg list;
  output : [ `Group of int | `Agg of int ] list;
}

let of_ast_fn = function
  | Ast.Count -> Count
  | Ast.Sum -> Sum
  | Ast.Avg -> Avg
  | Ast.Min -> Min
  | Ast.Max -> Max

let fn_name = function
  | Count -> "COUNT"
  | Sum -> "SUM"
  | Avg -> "AVG"
  | Min -> "MIN"
  | Max -> "MAX"

(* Running state of one aggregate over one group. *)
type acc = {
  mutable count : int;  (* non-null inputs seen *)
  mutable sum_int : int;
  mutable sum_float : float;
  mutable saw_float : bool;
  mutable extremum : Value.t;  (* Null until a value arrives *)
}

let fresh_acc () =
  { count = 0; sum_int = 0; sum_float = 0.; saw_float = false; extremum = Value.Null }

let feed fn acc v =
  match v with
  | Value.Null -> ()
  | _ ->
    acc.count <- acc.count + 1;
    (match fn, v with
     | (Sum | Avg), Value.Int i -> acc.sum_int <- acc.sum_int + i
     | (Sum | Avg), Value.Float f ->
       acc.saw_float <- true;
       acc.sum_float <- acc.sum_float +. f
     | (Sum | Avg), (Value.Date _ | Value.Str _) ->
       invalid_arg "Aggregate: SUM/AVG over a non-numeric column"
     | (Min | Max), _ ->
       if Value.is_null acc.extremum then acc.extremum <- v
       else begin
         let c = Value.compare v acc.extremum in
         if (fn = Min && c < 0) || (fn = Max && c > 0) then acc.extremum <- v
       end
     | Count, _ -> ()
     | _, Value.Null -> ())

let finish fn acc ~group_size =
  match fn with
  | Count -> Value.Int acc.count
  | Sum ->
    if acc.count = 0 then Value.Null
    else if acc.saw_float then Value.Float (acc.sum_float +. Float.of_int acc.sum_int)
    else Value.Int acc.sum_int
  | Avg ->
    if acc.count = 0 then Value.Null
    else
      Value.Float
        ((acc.sum_float +. Float.of_int acc.sum_int) /. Float.of_int acc.count)
  | Min | Max ->
    ignore group_size;
    acc.extremum

let apply spec rows =
  let k = List.length spec.group_by in
  let module Key = struct
    type t = Value.t array

    let equal a b = Array.length a = Array.length b && Array.for_all2 Value.equal a b
    let hash a = Array.fold_left (fun h v -> (h * 31) + Value.hash v) 17 a
  end in
  let module Groups = Hashtbl.Make (Key) in
  let groups : (int ref * acc array) Groups.t = Groups.create 64 in
  let order = ref [] in
  List.iter
    (fun row ->
       let key = Array.sub row 0 k in
       let size, accs =
         match Groups.find_opt groups key with
         | Some entry -> entry
         | None ->
           let entry = (ref 0, Array.of_list (List.map (fun _ -> fresh_acc ()) spec.aggs)) in
           Groups.add groups key entry;
           order := key :: !order;
           entry
       in
       incr size;
       List.iteri
         (fun i agg ->
            let v =
              match agg.a_arg_pos with
              | Some pos -> row.(pos)
              | None -> Value.Int 1  (* star-count: every row counts *)
            in
            feed agg.a_fn accs.(i) v)
         spec.aggs)
    rows;
  (* Global aggregation yields one row even over no input. *)
  if k = 0 && Groups.length groups = 0 && spec.aggs <> [] then begin
    let accs = Array.of_list (List.map (fun _ -> fresh_acc ()) spec.aggs) in
    Groups.add groups [||] (ref 0, accs);
    order := [||] :: !order
  end;
  List.rev_map
    (fun key ->
       let size, accs = Groups.find groups key in
       let aggs = Array.of_list spec.aggs in
       Array.of_list
         (List.map
            (function
              | `Group g -> key.(g)
              | `Agg a -> finish aggs.(a).a_fn accs.(a) ~group_size:!size)
            spec.output))
    !order
