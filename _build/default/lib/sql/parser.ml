exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type state = {
  mutable tokens : Lexer.token list;
}

let peek st =
  match st.tokens with
  | [] -> Lexer.Eof
  | t :: _ -> t

let advance st =
  match st.tokens with
  | [] -> ()
  | _ :: rest -> st.tokens <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect_kw st kw =
  match next st with
  | Lexer.Kw (k, _) when k = kw -> ()
  | t -> fail "expected %s, got %s" kw (Lexer.token_to_string t)

let expect_symbol st sym =
  match next st with
  | Lexer.Symbol s when s = sym -> ()
  | t -> fail "expected %S, got %s" sym (Lexer.token_to_string t)

let accept_symbol st sym =
  match peek st with
  | Lexer.Symbol s when s = sym ->
    advance st;
    true
  | _ -> false

let accept_kw st kw =
  match peek st with
  | Lexer.Kw (k, _) when k = kw ->
    advance st;
    true
  | _ -> false

let ident st =
  match next st with
  | Lexer.Ident s -> s
  (* Unreserved-ish keywords usable as identifiers in practice:
     DATE and KEY appear as column names in real schemas. *)
  | Lexer.Kw (("DATE" | "KEY"), raw) -> raw
  | t -> fail "expected identifier, got %s" (Lexer.token_to_string t)

let int_lit st =
  match next st with
  | Lexer.Int_lit i -> i
  | t -> fail "expected integer, got %s" (Lexer.token_to_string t)

(* ---- DDL ---- *)

let parse_type st =
  match next st with
  | Lexer.Kw (("INTEGER" | "INT"), _) -> Ast.Ty_integer
  | Lexer.Kw ("FLOAT", _) -> Ast.Ty_float
  | Lexer.Kw ("DATE", _) -> Ast.Ty_date
  | Lexer.Kw ("CHAR", _) ->
    expect_symbol st "(";
    let n = int_lit st in
    expect_symbol st ")";
    if n <= 0 then fail "CHAR width must be positive";
    Ast.Ty_char n
  | t -> fail "expected a type, got %s" (Lexer.token_to_string t)

let parse_coldef st =
  let col_name = ident st in
  let col_ty = parse_type st in
  let primary_key = ref false in
  let references = ref None in
  let hidden = ref false in
  let rec modifiers () =
    if accept_kw st "PRIMARY" then begin
      expect_kw st "KEY";
      primary_key := true;
      modifiers ()
    end
    else if accept_kw st "REFERENCES" then begin
      let target = ident st in
      if accept_symbol st "(" then begin
        let _referenced_col = ident st in
        expect_symbol st ")"
      end;
      references := Some target;
      modifiers ()
    end
    else if accept_kw st "HIDDEN" then begin
      hidden := true;
      modifiers ()
    end
    else if accept_kw st "NOT" then begin
      expect_kw st "NULL";
      modifiers ()
    end
  in
  modifiers ();
  {
    Ast.col_name;
    col_ty;
    primary_key = !primary_key;
    references = !references;
    hidden = !hidden;
  }

let parse_create_table st =
  expect_kw st "CREATE";
  expect_kw st "TABLE";
  let table_name = ident st in
  expect_symbol st "(";
  let rec cols acc =
    let c = parse_coldef st in
    if accept_symbol st "," then cols (c :: acc) else List.rev (c :: acc)
  in
  let ddl_columns = cols [] in
  expect_symbol st ")";
  ignore (accept_symbol st ";");
  { Ast.table_name; ddl_columns }

(* ---- SELECT ---- *)

let parse_col_ref st =
  let first = ident st in
  if accept_symbol st "." then
    let column = ident st in
    { Ast.qualifier = Some first; column }
  else { Ast.qualifier = None; column = first }

let parse_literal st =
  match next st with
  | Lexer.Int_lit i -> Ast.L_int i
  | Lexer.Float_lit f -> Ast.L_float f
  | Lexer.String_lit s -> Ast.L_string s
  | Lexer.Kw ("DATE", _) ->
    (match next st with
     | Lexer.String_lit s -> Ast.L_string s
     | t -> fail "expected date string after DATE, got %s" (Lexer.token_to_string t))
  | t -> fail "expected literal, got %s" (Lexer.token_to_string t)

let parse_condition st =
  let left = parse_col_ref st in
  match peek st with
  | Lexer.Kw ("BETWEEN", _) ->
    advance st;
    let lo = parse_literal st in
    expect_kw st "AND";
    let hi = parse_literal st in
    Ast.C_between (left, lo, hi)
  | Lexer.Kw ("LIKE", _) ->
    advance st;
    (match next st with
     | Lexer.String_lit pat -> Ast.C_like (left, pat)
     | t -> fail "expected pattern string after LIKE, got %s" (Lexer.token_to_string t))
  | Lexer.Kw ("IN", _) ->
    advance st;
    expect_symbol st "(";
    let rec lits acc =
      let l = parse_literal st in
      if accept_symbol st "," then lits (l :: acc) else List.rev (l :: acc)
    in
    let ls = lits [] in
    expect_symbol st ")";
    Ast.C_in (left, ls)
  | Lexer.Symbol ("=" | "<>" | "<" | "<=" | ">" | ">=") ->
    let op =
      match next st with
      | Lexer.Symbol "=" -> Ast.Op_eq
      | Lexer.Symbol "<>" -> Ast.Op_ne
      | Lexer.Symbol "<" -> Ast.Op_lt
      | Lexer.Symbol "<=" -> Ast.Op_le
      | Lexer.Symbol ">" -> Ast.Op_gt
      | Lexer.Symbol ">=" -> Ast.Op_ge
      | t -> fail "expected comparison operator, got %s" (Lexer.token_to_string t)
    in
    (* A right-hand side that is an identifier makes this a join. *)
    (* Keywords that double as identifiers need lookahead: DATE '...'
       is a literal; a lone Date is a column reference. *)
    let rhs_is_col_ref =
      match st.tokens with
      | Lexer.Ident _ :: _ | Lexer.Kw ("KEY", _) :: _ -> true
      | Lexer.Kw ("DATE", _) :: Lexer.String_lit _ :: _ -> false
      | Lexer.Kw ("DATE", _) :: _ -> true
      | _ -> false
    in
    if rhs_is_col_ref then begin
      if op <> Ast.Op_eq then fail "joins must use =";
      let right = parse_col_ref st in
      Ast.C_join (left, right)
    end
    else
      let lit = parse_literal st in
      Ast.C_cmp (left, op, lit)
  | t -> fail "expected condition operator, got %s" (Lexer.token_to_string t)

let parse_projection_item st =
  match peek st with
  | Lexer.Kw (("COUNT" | "SUM" | "AVG" | "MIN" | "MAX"), _) ->
    let fn =
      match next st with
      | Lexer.Kw ("COUNT", _) -> Ast.Count
      | Lexer.Kw ("SUM", _) -> Ast.Sum
      | Lexer.Kw ("AVG", _) -> Ast.Avg
      | Lexer.Kw ("MIN", _) -> Ast.Min
      | Lexer.Kw ("MAX", _) -> Ast.Max
      | t -> fail "expected aggregate, got %s" (Lexer.token_to_string t)
    in
    expect_symbol st "(";
    let arg =
      if accept_symbol st "*" then begin
        if fn <> Ast.Count then fail "%s(*) is only valid for COUNT" (Ast.agg_fn_name fn);
        None
      end
      else Some (parse_col_ref st)
    in
    expect_symbol st ")";
    (match fn, arg with
     | Ast.Count, _ | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), Some _ ->
       Ast.P_agg (fn, arg)
     | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
       fail "%s needs a column argument" (Ast.agg_fn_name fn))
  | _ -> Ast.P_col (parse_col_ref st)

let parse_select_body st =
  expect_kw st "SELECT";
  let rec projections acc =
    let r = parse_projection_item st in
    if accept_symbol st "," then projections (r :: acc) else List.rev (r :: acc)
  in
  let projections = projections [] in
  expect_kw st "FROM";
  let parse_from_item () =
    let table = ident st in
    let alias =
      if accept_kw st "AS" then Some (ident st)
      else
        match peek st with
        | Lexer.Ident a ->
          advance st;
          Some a
        | _ -> None
    in
    (table, alias)
  in
  let rec from acc =
    let item = parse_from_item () in
    if accept_symbol st "," then from (item :: acc) else List.rev (item :: acc)
  in
  let from = from [] in
  let where =
    if accept_kw st "WHERE" then begin
      let rec conds acc =
        let c = parse_condition st in
        if accept_kw st "AND" then conds (c :: acc) else List.rev (c :: acc)
      in
      conds []
    end
    else []
  in
  let group_by =
    if accept_kw st "GROUP" then begin
      expect_kw st "BY";
      let rec cols acc =
        let r = parse_col_ref st in
        if accept_symbol st "," then cols (r :: acc) else List.rev (r :: acc)
      in
      cols []
    end
    else []
  in
  let order_by =
    if accept_kw st "ORDER" then begin
      expect_kw st "BY";
      let rec cols acc =
        let r = parse_col_ref st in
        let desc =
          if accept_kw st "DESC" then true
          else begin
            ignore (accept_kw st "ASC");
            false
          end
        in
        if accept_symbol st "," then cols ((r, desc) :: acc)
        else List.rev ((r, desc) :: acc)
      in
      cols []
    end
    else []
  in
  let limit =
    if accept_kw st "LIMIT" then begin
      let n = int_lit st in
      if n < 0 then fail "LIMIT must be non-negative";
      Some n
    end
    else None
  in
  ignore (accept_symbol st ";");
  { Ast.projections; from; where; group_by; order_by; limit }

let parse_statement src =
  let st = { tokens = Lexer.tokenize src } in
  let stmt =
    match peek st with
    | Lexer.Kw ("CREATE", _) -> Ast.Create_table (parse_create_table st)
    | Lexer.Kw ("SELECT", _) -> Ast.Select (parse_select_body st)
    | t -> fail "expected CREATE or SELECT, got %s" (Lexer.token_to_string t)
  in
  (match peek st with
   | Lexer.Eof -> ()
   | t -> fail "trailing input: %s" (Lexer.token_to_string t));
  stmt

let parse_select src =
  match parse_statement src with
  | Ast.Select s -> s
  | Ast.Create_table _ -> fail "expected a SELECT statement"

let parse_ddl src =
  let st = { tokens = Lexer.tokenize src } in
  let rec loop acc =
    match peek st with
    | Lexer.Eof -> List.rev acc
    | Lexer.Kw ("CREATE", _) -> loop (parse_create_table st :: acc)
    | t -> fail "expected CREATE TABLE, got %s" (Lexer.token_to_string t)
  in
  loop []
