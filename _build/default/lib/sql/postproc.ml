module Value = Ghost_kernel.Value

let order_rows ~order_by rows =
  match order_by with
  | [] -> rows
  | keys ->
    let compare_rows a b =
      let rec loop = function
        | [] -> 0
        | (i, desc) :: rest ->
          let c = Value.compare a.(i) b.(i) in
          if c <> 0 then if desc then -c else c else loop rest
      in
      loop keys
    in
    List.stable_sort compare_rows rows

let truncate limit rows =
  match limit with
  | None -> rows
  | Some n ->
    let rec take n = function
      | [] -> []
      | _ when n <= 0 -> []
      | x :: rest -> x :: take (n - 1) rest
    in
    take n rows

let apply ~order_by ~limit rows = truncate limit (order_rows ~order_by rows)
