(** Recursive-descent parser for the SQL subset.

    Grammar (conjunctive SPJ, as in the paper's examples):
    {v
    statement   ::= create_table | select
    create_table::= CREATE TABLE ident '(' coldef (',' coldef)* ')' [';']
    coldef      ::= ident type [PRIMARY KEY] [REFERENCES ident ['(' ident ')']] [HIDDEN]
    type        ::= INTEGER | INT | FLOAT | DATE | CHAR '(' int ')'
    select      ::= SELECT colref (',' colref)* FROM fromitem (',' fromitem)*
                    [WHERE cond (AND cond)*] [';']
    fromitem    ::= ident [[AS] ident]
    cond        ::= colref op literal | colref BETWEEN literal AND literal
                  | colref IN '(' literal (',' literal)* ')' | colref '=' colref
    literal     ::= int | float | string | DATE string
    v} *)

exception Parse_error of string

val parse_statement : string -> Ast.statement
val parse_select : string -> Ast.select
(** Raises {!Parse_error} if the statement is not a [SELECT]. *)

val parse_ddl : string -> Ast.create_table list
(** Parses a script of one or more [CREATE TABLE] statements. *)
