module Value = Ghost_kernel.Value
module Date = Ghost_kernel.Date
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate

exception Bind_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Bind_error s)) fmt

let ty_of_ast = function
  | Ast.Ty_integer -> Value.T_int
  | Ast.Ty_float -> Value.T_float
  | Ast.Ty_date -> Value.T_date
  | Ast.Ty_char n -> Value.T_char n

let ddl_to_schema creates =
  let table_of_create (c : Ast.create_table) =
    let keys =
      List.filter (fun (d : Ast.ddl_column) -> d.Ast.primary_key) c.Ast.ddl_columns
    in
    let key =
      match keys with
      | [ k ] ->
        if k.Ast.col_ty <> Ast.Ty_integer then
          fail "table %s: primary key %s must be INTEGER" c.Ast.table_name k.Ast.col_name;
        if k.Ast.hidden then
          fail
            "table %s: the primary key cannot be HIDDEN (keys are replicated on the \
             device and stay visible)"
            c.Ast.table_name;
        k.Ast.col_name
      | [] -> fail "table %s: no PRIMARY KEY column" c.Ast.table_name
      | _ -> fail "table %s: more than one PRIMARY KEY column" c.Ast.table_name
    in
    let columns =
      List.filter_map
        (fun (d : Ast.ddl_column) ->
           if d.Ast.primary_key then None
           else
             Some
               (Column.make
                  ~visibility:(if d.Ast.hidden then Column.Hidden else Column.Visible)
                  ?refs:d.Ast.references d.Ast.col_name (ty_of_ast d.Ast.col_ty)))
        c.Ast.ddl_columns
    in
    Schema.table ~name:c.Ast.table_name ~key columns
  in
  Schema.create (List.map table_of_create creates)

type query = {
  tables : string list;
  projections : (string * string) list;
  selections : Predicate.t list;
  join_edges : (string * string) list;
  aggregate : Aggregate.spec option;
  order_by : (int * bool) list;
  limit : int option;
  text : string;
}

let coerce_literal (col : Column.t) lit =
  match col.Column.ty, lit with
  | Value.T_int, Ast.L_int i -> Value.Int i
  | Value.T_float, Ast.L_float f -> Value.Float f
  | Value.T_float, Ast.L_int i -> Value.Float (Float.of_int i)
  | Value.T_date, Ast.L_string s ->
    (try Value.Date (Date.of_string s)
     with Invalid_argument _ -> fail "invalid date literal %S for column %s" s col.name)
  | Value.T_char _, Ast.L_string s -> Value.Str s
  | (Value.T_int | Value.T_float | Value.T_date | Value.T_char _), _ ->
    fail "literal %s does not match the type of column %s (%s)"
      (Ast.literal_to_string lit) col.Column.name (Value.ty_name col.Column.ty)

let bind_select schema (s : Ast.select) =
  if s.Ast.from = [] then fail "empty FROM clause";
  (* alias (or table name) -> table name *)
  let scope = Hashtbl.create 8 in
  let tables =
    List.map
      (fun (table, alias) ->
         if not (Schema.mem_table schema table) then fail "unknown table %s" table;
         let add name =
           if Hashtbl.mem scope name then fail "ambiguous FROM name %s" name;
           Hashtbl.add scope name table
         in
         add (Option.value alias ~default:table);
         (match alias with
          | Some _ when not (Hashtbl.mem scope table) -> Hashtbl.add scope table table
          | Some _ | None -> ());
         table)
      s.Ast.from
  in
  let resolve (r : Ast.col_ref) =
    match r.Ast.qualifier with
    | Some q ->
      (match Hashtbl.find_opt scope q with
       | None -> fail "unknown table or alias %s" q
       | Some table ->
         let tbl = Schema.find_table schema table in
         (match Schema.find_column tbl r.Ast.column with
          | col -> (table, col)
          | exception Not_found -> fail "unknown column %s.%s" table r.Ast.column))
    | None ->
      let matches =
        List.filter_map
          (fun table ->
             let tbl = Schema.find_table schema table in
             match Schema.find_column tbl r.Ast.column with
             | col -> Some (table, col)
             | exception Not_found -> None)
          (List.sort_uniq String.compare tables)
      in
      (match matches with
       | [ m ] -> m
       | [] -> fail "unknown column %s" r.Ast.column
       | _ -> fail "ambiguous column %s" r.Ast.column)
  in
  (* Projections: plain columns pass through; aggregates make the
     query an aggregate query whose base rows are GROUP BY columns
     followed by aggregate arguments. *)
  let has_agg =
    List.exists (function Ast.P_agg _ -> true | Ast.P_col _ -> false) s.Ast.projections
  in
  let aggregate_mode = has_agg || s.Ast.group_by <> [] in
  let projections, aggregate =
    if not aggregate_mode then
      ( List.map
          (fun item ->
             match item with
             | Ast.P_col r ->
               let table, col = resolve r in
               (table, col.Column.name)
             | Ast.P_agg _ -> assert false)
          s.Ast.projections,
        None )
    else begin
      let group_cols =
        List.map
          (fun r ->
             let table, col = resolve r in
             (table, col.Column.name))
          s.Ast.group_by
      in
      let group_pos gc =
        let rec loop i = function
          | [] -> None
          | g :: rest -> if g = gc then Some i else loop (i + 1) rest
        in
        loop 0 group_cols
      in
      (* Assign argument positions after the group columns, in SELECT
         order; reuse a position for a repeated argument column. *)
      let arg_cols = ref [] in
      let arg_pos (table, cname) =
        let rec loop i = function
          | [] ->
            arg_cols := !arg_cols @ [ (table, cname) ];
            List.length group_cols + i
          | a :: rest -> if a = (table, cname) then List.length group_cols + i
            else loop (i + 1) rest
        in
        loop 0 !arg_cols
      in
      let aggs = ref [] in
      let output =
        List.map
          (fun item ->
             match item with
             | Ast.P_col r ->
               let table, col = resolve r in
               (match group_pos (table, col.Column.name) with
                | Some g -> `Group g
                | None ->
                  fail "column %s.%s must appear in GROUP BY" table col.Column.name)
             | Ast.P_agg (fn, arg) ->
               let a_arg, a_arg_pos =
                 match arg with
                 | None -> (None, None)
                 | Some r ->
                   let table, col = resolve r in
                   (match fn, col.Column.ty with
                    | (Ast.Sum | Ast.Avg), (Value.T_char _ | Value.T_date) ->
                      fail "%s over non-numeric column %s.%s" (Ast.agg_fn_name fn)
                        table col.Column.name
                    | _, _ -> ());
                   let key = (table, col.Column.name) in
                   (Some key, Some (arg_pos key))
               in
               let agg =
                 { Aggregate.a_fn = Aggregate.of_ast_fn fn; a_arg; a_arg_pos }
               in
               aggs := !aggs @ [ agg ];
               `Agg (List.length !aggs - 1))
          s.Ast.projections
      in
      ( group_cols @ !arg_cols,
        Some { Aggregate.group_by = group_cols; aggs = !aggs; output } )
    end
  in
  let selections = ref [] in
  let join_edges = ref [] in
  let add_join (ta, ca) (tb, cb) =
    (* One side must be a table key, the other the referencing foreign
       key — i.e. the condition asserts a schema-tree edge. *)
    let edge_of (tk, ck) (tf, cf) =
      let keyed = Schema.find_table schema tk in
      if keyed.Schema.key <> ck.Column.name then None
      else
        match cf.Column.refs with
        | Some target when target = tk -> Some (tf, tk)  (* (parent, child) *)
        | Some _ | None -> None
    in
    match edge_of (ta, ca) (tb, cb), edge_of (tb, cb) (ta, ca) with
    | Some (parent, child), _ | _, Some (parent, child) ->
      join_edges := (parent, child) :: !join_edges
    | None, None ->
      fail "join %s.%s = %s.%s is not a foreign-key edge of the schema tree" ta
        ca.Column.name tb cb.Column.name
  in
  List.iter
    (fun cond ->
       match cond with
       | Ast.C_join (a, b) ->
         let ra = resolve a and rb = resolve b in
         add_join (fst ra, snd ra) (fst rb, snd rb)
       | Ast.C_cmp (r, op, lit) ->
         let table, col = resolve r in
         let v = coerce_literal col lit in
         let cmp =
           match op with
           | Ast.Op_eq -> Predicate.Eq v
           | Ast.Op_ne -> Predicate.Ne v
           | Ast.Op_lt -> Predicate.Lt v
           | Ast.Op_le -> Predicate.Le v
           | Ast.Op_gt -> Predicate.Gt v
           | Ast.Op_ge -> Predicate.Ge v
         in
         selections :=
           Predicate.make ~table ~column:col.Column.name cmp :: !selections
       | Ast.C_between (r, lo, hi) ->
         let table, col = resolve r in
         selections :=
           Predicate.make ~table ~column:col.Column.name
             (Predicate.Between (coerce_literal col lo, coerce_literal col hi))
           :: !selections
       | Ast.C_in (r, lits) ->
         let table, col = resolve r in
         selections :=
           Predicate.make ~table ~column:col.Column.name
             (Predicate.In (List.map (coerce_literal col) lits))
           :: !selections
       | Ast.C_like (r, pat) ->
         let table, col = resolve r in
         (match col.Column.ty with
          | Value.T_char _ -> ()
          | Value.T_int | Value.T_float | Value.T_date ->
            fail "LIKE on non-string column %s.%s" table col.Column.name);
         (* supported patterns: a literal prefix, optionally ending in
            one '%'; '_' and interior '%' are not supported *)
         let n = String.length pat in
         if n = 0 then fail "empty LIKE pattern";
         String.iteri
           (fun i c ->
              match c with
              | '_' -> fail "LIKE '_' wildcard is not supported"
              | '%' when i < n - 1 -> fail "only a trailing %% is supported in LIKE"
              | _ -> ())
           pat;
         let cmp =
           if pat.[n - 1] = '%' then Predicate.Prefix (String.sub pat 0 (n - 1))
           else Predicate.Eq (Value.Str pat)
         in
         selections := Predicate.make ~table ~column:col.Column.name cmp :: !selections)
    s.Ast.where;
  (* Connectivity: the asserted edges must connect all FROM tables. *)
  let distinct = List.sort_uniq String.compare tables in
  (match distinct with
   | [] -> assert false
   | first :: _ ->
     let reached = Hashtbl.create 8 in
     let rec walk t =
       if not (Hashtbl.mem reached t) then begin
         Hashtbl.add reached t ();
         List.iter
           (fun (p, c) ->
              if p = t then walk c;
              if c = t then walk p)
           !join_edges
       end
     in
     walk first;
     List.iter
       (fun t ->
          if not (Hashtbl.mem reached t) then
            fail "table %s is not connected to the rest of the query by join conditions"
              t)
       distinct);
  (* ORDER BY columns must be selected plain columns; they are applied
     to the final output rows (after aggregation, if any). *)
  let order_by =
    List.map
      (fun (r, desc) ->
         let table, col = resolve r in
         let target = (table, col.Column.name) in
         let pos =
           match aggregate with
           | None ->
             let rec loop i = function
               | [] -> None
               | p :: rest -> if p = target then Some i else loop (i + 1) rest
             in
             loop 0 projections
           | Some spec ->
             let rec loop i = function
               | [] -> None
               | `Group g :: rest ->
                 if List.nth spec.Aggregate.group_by g = target then Some i
                 else loop (i + 1) rest
               | `Agg _ :: rest -> loop (i + 1) rest
             in
             loop 0 spec.Aggregate.output
         in
         match pos with
         | Some i -> (i, desc)
         | None ->
           fail "ORDER BY column %s.%s must appear in the SELECT list" table
             col.Column.name)
      s.Ast.order_by
  in
  {
    tables = distinct;
    projections;
    selections = List.rev !selections;
    join_edges = List.rev !join_edges;
    aggregate;
    order_by;
    limit = s.Ast.limit;
    text = Ast.select_to_string s;
  }

let bind schema sql = bind_select schema (Parser.parse_select sql)
