lib/public/spy.ml: Format Ghost_device List
