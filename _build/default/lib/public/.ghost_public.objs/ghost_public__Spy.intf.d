lib/public/spy.mli: Format Ghost_device
