lib/public/public_store.ml: Array Ghost_device Ghost_kernel Ghost_relation Hashtbl Int List Option Printf String
