lib/public/public_store.mli: Ghost_device Ghost_kernel Ghost_relation
