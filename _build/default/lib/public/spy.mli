module Trace = Ghost_device.Trace

(** What a pirate sees (demo phase 1, "checking security").

    A Trojan horse on the user's terminal observes every message on the
    public links. This module aggregates the trace into the view the
    demo GUI shows: per-link message counts and byte volumes, the
    queries posed, and — crucially — the absence of anything else. *)

type link_summary = {
  link : Trace.link;
  messages : int;
  bytes : int;
}

type report = {
  per_link : link_summary list;  (** spy-visible links only *)
  queries_observed : string list;
  id_lists_observed : (string * int) list;
      (** (table, count) — id lists entering the device *)
  value_streams_observed : (string * string * int) list;
      (** (table, column, count) — value streams entering the device *)
  device_outbound_payload_bytes : int;
      (** bytes the device sent on spy-visible links, protocol acks
          excluded — the number the paper promises is 0 *)
}

val analyze : Trace.t -> report
val pp : Format.formatter -> report -> unit
val to_string : report -> string
