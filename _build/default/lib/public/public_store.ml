module Value = Ghost_kernel.Value
module Sorted_ids = Ghost_kernel.Sorted_ids
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Predicate = Ghost_relation.Predicate
module Trace = Ghost_device.Trace

type t = {
  schema : Schema.t;
  visible : (string, Relation.t) Hashtbl.t;  (* visible sub-relations *)
  sub_schemas : (string, Schema.table) Hashtbl.t;
}

exception Hidden_column of { table : string; column : string }

let visible_sub_schema (tbl : Schema.table) =
  Schema.table ~name:tbl.Schema.name ~key:tbl.Schema.key
    (List.filter (fun c -> not (Column.is_hidden c)) tbl.Schema.columns)

let strip_row (tbl : Schema.table) row =
  let keep =
    Array.of_list
      (true
       :: List.map (fun (c : Column.t) -> not (Column.is_hidden c)) tbl.Schema.columns)
  in
  let out = ref [] in
  Array.iteri (fun i v -> if keep.(i) then out := v :: !out) row;
  Array.of_list (List.rev !out)

let create schema tables_with_rows =
  let visible = Hashtbl.create 8 in
  let sub_schemas = Hashtbl.create 8 in
  List.iter
    (fun (name, rows) ->
       let tbl = Schema.find_table schema name in
       let sub = visible_sub_schema tbl in
       Hashtbl.replace sub_schemas name sub;
       Hashtbl.replace visible name
         (Relation.create sub (List.map (strip_row tbl) rows)))
    tables_with_rows;
  (* every table of the schema must be present *)
  List.iter
    (fun (tbl : Schema.table) ->
       if not (Hashtbl.mem visible tbl.Schema.name) then
         invalid_arg
           (Printf.sprintf "Public_store.create: missing rows for table %s"
              tbl.Schema.name))
    (Schema.tables schema);
  { schema; visible; sub_schemas }

let schema t = t.schema
let visible_table t name = Hashtbl.find t.sub_schemas name
let cardinality t name = Relation.cardinality (Hashtbl.find t.visible name)

let check_visible t ~table ~column =
  let tbl = Schema.find_table t.schema table in
  match Schema.find_column tbl column with
  | col -> if Column.is_hidden col then raise (Hidden_column { table; column })
  | exception Not_found -> raise (Hidden_column { table; column })

let record_subquery ~trace text =
  Trace.record trace Trace.Pc_to_server (Trace.Query_text text)
    ~bytes:(String.length text)

let select_ids t ~trace (p : Predicate.t) =
  check_visible t ~table:p.Predicate.table ~column:p.Predicate.column;
  let rel = Hashtbl.find t.visible p.Predicate.table in
  record_subquery ~trace
    (Printf.sprintf "SELECT %s FROM %s WHERE %s"
       (Relation.schema rel).Schema.key p.Predicate.table (Predicate.to_string p));
  let ids = Relation.select_ids rel p.Predicate.cmp p.Predicate.column in
  Trace.record trace Trace.Server_to_pc
    (Trace.Id_list { table = p.Predicate.table; count = Array.length ids })
    ~bytes:(4 * Array.length ids);
  ids

let stream_column t ~trace ~table ~column ~preds =
  check_visible t ~table ~column;
  List.iter
    (fun (p : Predicate.t) ->
       if p.Predicate.table <> table then
         invalid_arg "Public_store.stream_column: predicate on another table";
       check_visible t ~table ~column:p.Predicate.column)
    preds;
  let rel = Hashtbl.find t.visible table in
  record_subquery ~trace
    (Printf.sprintf "SELECT %s, %s FROM %s%s" (Relation.schema rel).Schema.key column
       table
       (match preds with
        | [] -> ""
        | ps ->
          " WHERE " ^ String.concat " AND " (List.map Predicate.to_string ps)));
  let matches =
    Relation.select rel (fun row ->
      List.for_all
        (fun (p : Predicate.t) ->
           Predicate.holds p (Relation.value rel row p.Predicate.column))
        preds)
  in
  let pairs =
    List.map
      (fun row -> (Relation.key_of rel row, Relation.value rel row column))
      matches
    |> Array.of_list
  in
  Array.sort (fun (a, _) (b, _) -> Int.compare a b) pairs;
  let width = Value.ty_width (Schema.find_column (Relation.schema rel) column).Column.ty in
  Trace.record trace Trace.Server_to_pc
    (Trace.Value_stream { table; column; count = Array.length pairs })
    ~bytes:((4 + width) * Array.length pairs);
  pairs

let append_rows t name rows =
  let tbl = Schema.find_table t.schema name in
  let rel = Hashtbl.find t.visible name in
  let old_rows = Array.to_list (Relation.tuples rel) in
  let sub = Hashtbl.find t.sub_schemas name in
  Hashtbl.replace t.visible name
    (Relation.create sub (old_rows @ List.map (strip_row tbl) rows))

let delete_rows t name ids =
  let rel = Hashtbl.find t.visible name in
  let sub = Hashtbl.find t.sub_schemas name in
  let keep =
    Array.to_list (Relation.tuples rel)
    |> List.filter (fun row -> not (List.mem (Relation.key_of rel row) ids))
  in
  Hashtbl.replace t.visible name (Relation.create sub keep)

let lookup t ~table ~column id =
  check_visible t ~table ~column;
  let rel = Hashtbl.find t.visible table in
  Option.map (fun row -> Relation.value rel row column) (Relation.find rel id)

let all_ids t ~trace name =
  let rel = Hashtbl.find t.visible name in
  record_subquery ~trace
    (Printf.sprintf "SELECT %s FROM %s" (Relation.schema rel).Schema.key name);
  let ids =
    Sorted_ids.of_unsorted
      (List.map (Relation.key_of rel) (Array.to_list (Relation.tuples rel)))
  in
  Trace.record trace Trace.Server_to_pc
    (Trace.Id_list { table = name; count = Array.length ids })
    ~bytes:(4 * Array.length ids);
  ids
