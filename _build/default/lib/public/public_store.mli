module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Predicate = Ghost_relation.Predicate
module Trace = Ghost_device.Trace

(** The untrusted world: the public server / PC holding the visible
    part of the database.

    Primary keys and visible columns live here (Section 2 of the
    paper); hidden columns are stripped at load time and can never be
    queried — a predicate or stream request on a hidden column raises,
    as defense in depth on top of the planner's classification.

    The untrusted side is resource-rich, so evaluation is plain
    in-memory work; what matters is the {e traffic} it generates, which
    is recorded on the spy-visible links of the trace. *)

type t

exception Hidden_column of { table : string; column : string }

val create : Schema.t -> (string * Relation.tuple list) list -> t
(** [create schema tables_with_rows] keeps, for each table, the key and
    the visible columns only. Rows are full tuples (the split happens
    here, standing for the secure initial loading). *)

val schema : t -> Schema.t
val visible_table : t -> string -> Schema.table
(** The visible sub-schema of a table (key + visible columns). *)

val cardinality : t -> string -> int

val select_ids : t -> trace:Trace.t -> Predicate.t -> int array
(** Evaluates a visible selection and returns the sorted matching ids,
    recording the sub-query and its answer on the [Pc_to_server] /
    [Server_to_pc] links. Raises {!Hidden_column} if the predicate
    touches a hidden column. *)

val stream_column :
  t ->
  trace:Trace.t ->
  table:string ->
  column:string ->
  preds:Predicate.t list ->
  (int * Value.t) array
(** The sorted (id, value) projection stream for a visible column,
    restricted to tuples satisfying all [preds] (visible predicates on
    the same table). Traffic is recorded like {!select_ids}. *)

val all_ids : t -> trace:Trace.t -> string -> int array
(** Sorted ids of a whole table (an unfiltered projection stream
    request). *)

val append_rows : t -> string -> Relation.tuple list -> unit
(** Appends freshly inserted rows (their visible part) to a table.
    Raises [Invalid_argument] on arity/type/duplicate-key problems. *)

val delete_rows : t -> string -> int list -> unit
(** Removes rows by key; unknown keys are ignored. *)

val lookup : t -> table:string -> column:string -> int -> Value.t option
(** Direct visible-value access by key, without recording traffic —
    for the secure-setting reorganization, not for query processing.
    Raises {!Hidden_column} on hidden columns. *)
