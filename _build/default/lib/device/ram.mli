(** The secure chip's RAM arena.

    The chip has only tens of kilobytes of RAM (the smaller the silicon
    die, the harder it is to snoop — Section 3 of the paper), and every
    device-side buffer must fit it. The arena is an {e accounting}
    structure: allocations reserve simulated bytes against a hard
    budget and raise {!Ram_exceeded} on overflow, which forces plans to
    stream, spill to Flash, or shrink their Bloom filters — exactly the
    algorithmic pressure the real hardware exerts. *)

type t

exception Ram_exceeded of {
  label : string;
  requested : int;
  in_use : int;
  budget : int;
}

type cell
(** A live allocation. *)

val create : budget:int -> t
(** [budget] in bytes (the demo device default is 64 KiB). *)

val budget : t -> int
val in_use : t -> int
val peak : t -> int
(** High-water mark since creation (or last {!reset_peak}). *)

val reset_peak : t -> unit
(** Sets the high-water mark back to the current usage. *)

val alloc : t -> label:string -> int -> cell
(** Raises {!Ram_exceeded} when the budget would be exceeded. *)

val cell_size : cell -> int

val free : t -> cell -> unit
(** Double frees are ignored (the cell is already returned). *)

val resize : t -> cell -> int -> unit
(** Grow or shrink a live allocation in place (e.g. a buffer that
    doubles); raises {!Ram_exceeded} on overflow and
    [Invalid_argument] on a freed cell. *)

val with_alloc : t -> label:string -> int -> (cell -> 'a) -> 'a
(** Allocates, runs, and frees even on exception. *)

val would_fit : t -> int -> bool
(** True when an allocation of that many bytes would currently
    succeed (used by the optimizer to pick RAM-resident vs spilled
    algorithms). *)

(** {2 Measurement scopes}

    The demo GUI reports {e local} RAM consumption per plan operator.
    A scope observes the high-water mark reached while it is open. *)

type scope

val open_scope : t -> scope
val scope_peak : scope -> int
(** Highest [in_use] observed since the scope opened (so far). *)

val close_scope : t -> scope -> int
(** Closes and returns the scope's peak. *)
