module Flash = Ghost_flash.Flash

type config = {
  ram_budget : int;
  usb_mbit_per_s : float;
  usb_per_message_us : float;
  cpu_mips : float;
  flash_geometry : Flash.geometry;
  flash_cost : Flash.cost;
}

let default_config = {
  ram_budget = 64 * 1024;
  usb_mbit_per_s = 12.0;
  usb_per_message_us = 100.0;
  cpu_mips = 50.0;
  flash_geometry = Flash.default_geometry;
  flash_cost = Flash.default_cost;
}

let high_speed_usb config = { config with usb_mbit_per_s = 480.0 }

type t = {
  config : config;
  flash : Flash.t;
  scratch : Flash.t;
  ram : Ram.t;
  trace : Trace.t;
  mutable usb_bytes_in : int;
  mutable usb_bytes_out : int;
  mutable usb_us : float;
  mutable cpu_ops : int;
}

let create ?(config = default_config) ~trace () = {
  config;
  flash = Flash.create ~geometry:config.flash_geometry ~cost:config.flash_cost ();
  scratch = Flash.create ~geometry:config.flash_geometry ~cost:config.flash_cost ();
  ram = Ram.create ~budget:config.ram_budget;
  trace;
  usb_bytes_in = 0;
  usb_bytes_out = 0;
  usb_us = 0.;
  cpu_ops = 0;
}

let config t = t.config
let flash t = t.flash
let scratch t = t.scratch
let ram t = t.ram
let trace t = t.trace

let cpu t n =
  if n < 0 then invalid_arg "Device.cpu: negative";
  t.cpu_ops <- t.cpu_ops + n

let usb_transfer_us t bytes =
  t.config.usb_per_message_us
  +. (Float.of_int (bytes * 8) /. t.config.usb_mbit_per_s)

let receive t payload ~bytes =
  t.usb_bytes_in <- t.usb_bytes_in + bytes;
  t.usb_us <- t.usb_us +. usb_transfer_us t bytes;
  Trace.record t.trace Trace.Pc_to_device payload ~bytes

let emit_result t ~count ~bytes =
  t.usb_bytes_out <- t.usb_bytes_out + bytes;
  t.usb_us <- t.usb_us +. usb_transfer_us t bytes;
  Trace.record t.trace Trace.Device_to_display (Trace.Result_tuples { count }) ~bytes

let emit_ack t =
  t.usb_bytes_out <- t.usb_bytes_out + 1;
  t.usb_us <- t.usb_us +. usb_transfer_us t 1;
  Trace.record t.trace Trace.Device_to_pc Trace.Ack ~bytes:1

let cpu_time_us t = Float.of_int t.cpu_ops /. t.config.cpu_mips
let usb_time_us t = t.usb_us
let elapsed_us t =
  Flash.time_us t.flash +. Flash.time_us t.scratch +. t.usb_us +. cpu_time_us t

type snapshot = {
  flash : Flash.stats;
  usb_bytes_in : int;
  usb_bytes_out : int;
  usb_us : float;
  cpu_ops : int;
  elapsed : float;
}

let snapshot (t : t) = {
  flash = Flash.add_stats (Flash.stats t.flash) (Flash.stats t.scratch);
  usb_bytes_in = t.usb_bytes_in;
  usb_bytes_out = t.usb_bytes_out;
  usb_us = t.usb_us;
  cpu_ops = t.cpu_ops;
  elapsed = elapsed_us t;
}

type usage = {
  flash_page_reads : int;
  flash_page_programs : int;
  flash_us : float;
  used_usb_bytes_in : int;
  used_usb_us : float;
  used_cpu_ops : int;
  cpu_us : float;
  total_us : float;
}

let usage_between t ~before ~after =
  let f = Flash.diff_stats ~after:after.flash ~before:before.flash in
  let cpu_ops = after.cpu_ops - before.cpu_ops in
  {
    flash_page_reads = f.Flash.page_reads;
    flash_page_programs = f.Flash.page_programs;
    flash_us = Flash.total_time_us f;
    used_usb_bytes_in = after.usb_bytes_in - before.usb_bytes_in;
    used_usb_us = after.usb_us -. before.usb_us;
    used_cpu_ops = cpu_ops;
    cpu_us = Float.of_int cpu_ops /. t.config.cpu_mips;
    total_us = after.elapsed -. before.elapsed;
  }

let zero_usage = {
  flash_page_reads = 0;
  flash_page_programs = 0;
  flash_us = 0.;
  used_usb_bytes_in = 0;
  used_usb_us = 0.;
  used_cpu_ops = 0;
  cpu_us = 0.;
  total_us = 0.;
}

let add_usage a b = {
  flash_page_reads = a.flash_page_reads + b.flash_page_reads;
  flash_page_programs = a.flash_page_programs + b.flash_page_programs;
  flash_us = a.flash_us +. b.flash_us;
  used_usb_bytes_in = a.used_usb_bytes_in + b.used_usb_bytes_in;
  used_usb_us = a.used_usb_us +. b.used_usb_us;
  used_cpu_ops = a.used_cpu_ops + b.used_cpu_ops;
  cpu_us = a.cpu_us +. b.cpu_us;
  total_us = a.total_us +. b.total_us;
}

let pp_usage fmt u =
  Format.fprintf fmt
    "%.0f us (flash %.0f us / %d rd %d wr; usb %.0f us / %d B in; cpu %.0f us / %d ops)"
    u.total_us u.flash_us u.flash_page_reads u.flash_page_programs u.used_usb_us
    u.used_usb_bytes_in u.cpu_us u.used_cpu_ops
