module Flash = Ghost_flash.Flash

(** The smart USB device (Figure 2 of the paper): a secure chip
    (32-bit RISC CPU + tens-of-KB RAM) driving a large external NAND
    Flash, connected to the terminal over USB 2.0 full speed.

    The model combines the {!Flash} simulator, the {!Ram} arena, a
    metered USB port and a CPU-operation counter into one simulated
    clock. All device-side query processing charges its work here, so
    plan execution times are deterministic and reproducible. *)

type config = {
  ram_budget : int;  (** bytes of secure-chip RAM (default 64 KiB) *)
  usb_mbit_per_s : float;  (** link throughput (default 12, USB full speed) *)
  usb_per_message_us : float;  (** per-transfer protocol latency *)
  cpu_mips : float;  (** simulated RISC core speed (default 50 MIPS) *)
  flash_geometry : Flash.geometry;
  flash_cost : Flash.cost;
}

val default_config : config
(** The paper's demo device: 64 KiB RAM, 12 Mbit/s USB, 50 MIPS,
    default NAND geometry and costs. *)

val high_speed_usb : config -> config
(** Same device with a 480 Mbit/s link (the "future platforms" variant
    of Section 3). *)

type t

val create : ?config:config -> trace:Trace.t -> unit -> t
val config : t -> config
val flash : t -> Flash.t
(** The persistent Flash region holding the database and its indexes. *)

val scratch : t -> Flash.t
(** A Flash region reserved for query-time spills (external sort runs,
    intermediate merges). Managed separately so its blocks can be
    erased wholesale after a query without touching live data — the
    role of an FTL partition on a real device. Same cost model as
    {!flash}; its traffic counts toward the device clock. *)

val ram : t -> Ram.t
val trace : t -> Trace.t

val cpu : t -> int -> unit
(** [cpu t n] charges [n] simulated CPU operations. *)

val receive : t -> Trace.payload -> bytes:int -> unit
(** Meters an inbound USB transfer (visible data entering the device)
    and records it on the [Pc_to_device] link. *)

val emit_result : t -> count:int -> bytes:int -> unit
(** Sends result tuples to the secure display ([Device_to_display]
    link — not spy visible). *)

val emit_ack : t -> unit
(** A content-free protocol acknowledgement on [Device_to_pc]. *)

(** {2 Accounting} *)

val cpu_time_us : t -> float
val usb_time_us : t -> float
val elapsed_us : t -> float
(** Flash time + USB time + CPU time, in simulated microseconds. *)

type snapshot = {
  flash : Flash.stats;  (** main + scratch regions combined *)
  usb_bytes_in : int;
  usb_bytes_out : int;
  usb_us : float;
  cpu_ops : int;
  elapsed : float;
}

val snapshot : t -> snapshot

type usage = {
  flash_page_reads : int;
  flash_page_programs : int;
  flash_us : float;
  used_usb_bytes_in : int;
  used_usb_us : float;
  used_cpu_ops : int;
  cpu_us : float;
  total_us : float;
}

val usage_between : t -> before:snapshot -> after:snapshot -> usage
val zero_usage : usage
val add_usage : usage -> usage -> usage
val pp_usage : Format.formatter -> usage -> unit
