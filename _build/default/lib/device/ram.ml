exception Ram_exceeded of {
  label : string;
  requested : int;
  in_use : int;
  budget : int;
}

type cell = {
  mutable size : int;
  mutable freed : bool;
}

type scope = {
  mutable scope_high : int;
  mutable open_ : bool;
}

type t = {
  budget : int;
  mutable in_use : int;
  mutable peak : int;
  mutable scopes : scope list;
}

let create ~budget =
  if budget <= 0 then invalid_arg "Ram.create: budget <= 0";
  { budget; in_use = 0; peak = 0; scopes = [] }

let budget t = t.budget
let in_use t = t.in_use
let peak t = t.peak
let reset_peak t = t.peak <- t.in_use

let note_usage t =
  if t.in_use > t.peak then t.peak <- t.in_use;
  List.iter
    (fun s -> if s.open_ && t.in_use > s.scope_high then s.scope_high <- t.in_use)
    t.scopes

let alloc t ~label n =
  if n < 0 then invalid_arg "Ram.alloc: negative size";
  if t.in_use + n > t.budget then
    raise (Ram_exceeded { label; requested = n; in_use = t.in_use; budget = t.budget });
  t.in_use <- t.in_use + n;
  note_usage t;
  { size = n; freed = false }

let cell_size c = c.size

let free t c =
  if not c.freed then begin
    c.freed <- true;
    t.in_use <- t.in_use - c.size
  end

let resize t c n =
  if c.freed then invalid_arg "Ram.resize: freed cell";
  if n < 0 then invalid_arg "Ram.resize: negative size";
  let delta = n - c.size in
  if t.in_use + delta > t.budget then
    raise
      (Ram_exceeded
         { label = "resize"; requested = delta; in_use = t.in_use; budget = t.budget });
  t.in_use <- t.in_use + delta;
  c.size <- n;
  note_usage t

let with_alloc t ~label n f =
  let c = alloc t ~label n in
  match f c with
  | r ->
    free t c;
    r
  | exception e ->
    free t c;
    raise e

let would_fit t n = n >= 0 && t.in_use + n <= t.budget

let open_scope t =
  let s = { scope_high = t.in_use; open_ = true } in
  t.scopes <- s :: t.scopes;
  s

let scope_peak s = s.scope_high

let close_scope t s =
  s.open_ <- false;
  t.scopes <- List.filter (fun s' -> s' != s) t.scopes;
  s.scope_high
