lib/device/device.ml: Float Format Ghost_flash Ram Trace
