lib/device/ram.ml: List
