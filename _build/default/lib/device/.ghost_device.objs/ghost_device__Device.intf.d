lib/device/device.mli: Format Ghost_flash Ram Trace
