lib/device/trace.ml: Format List Printf
