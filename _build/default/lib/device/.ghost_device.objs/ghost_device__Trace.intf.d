lib/device/trace.mli: Format
