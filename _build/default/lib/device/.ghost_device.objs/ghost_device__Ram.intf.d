lib/device/ram.mli:
