module Value = Ghost_kernel.Value

type t = {
  bits : Bytes.t;
  m_bits : int;
  k : int;
}

let create ~m_bits ~k =
  if m_bits <= 0 then invalid_arg "Bloom.create: m_bits <= 0";
  if k <= 0 then invalid_arg "Bloom.create: k <= 0";
  { bits = Bytes.make ((m_bits + 7) / 8) '\000'; m_bits; k }

let m_bits t = t.m_bits
let k t = t.k
let size_bytes t = Bytes.length t.bits

let optimal_k ~m_bits ~n =
  if n <= 0 then 1
  else max 1 (int_of_float (Float.round (log 2. *. Float.of_int m_bits /. Float.of_int n)))

let bits_for_fpr ~n ~fpr =
  if fpr <= 0. || fpr >= 1. then invalid_arg "Bloom.bits_for_fpr: fpr out of (0,1)";
  let ln2 = log 2. in
  max 8 (int_of_float (ceil (-.Float.of_int n *. log fpr /. (ln2 *. ln2))))

let sized_for ~budget_bytes ~n =
  if budget_bytes <= 0 then invalid_arg "Bloom.sized_for: budget <= 0";
  let m_bits = budget_bytes * 8 in
  create ~m_bits ~k:(optimal_k ~m_bits ~n)

(* Double hashing: h_i = h1 + i*h2 (Kirsch–Mitzenmacher). The two base
   hashes are derived from the key with different multipliers. *)
let base_hashes key =
  let mix seed x =
    let x = (x lxor (x lsr 33)) * seed in
    let x = (x lxor (x lsr 29)) * 0x165667B19E3779F9 in
    (x lxor (x lsr 32)) land max_int
  in
  (mix 0x27220A95 key, mix 0x4F1BBCDD key lor 1)

let set_bit bits i = Bytes.set_uint8 bits (i lsr 3)
    (Bytes.get_uint8 bits (i lsr 3) lor (1 lsl (i land 7)))

let get_bit bits i = Bytes.get_uint8 bits (i lsr 3) land (1 lsl (i land 7)) <> 0

let add t key =
  let h1, h2 = base_hashes key in
  for i = 0 to t.k - 1 do
    set_bit t.bits (((h1 + (i * h2)) land max_int) mod t.m_bits)
  done

let mem t key =
  let h1, h2 = base_hashes key in
  let rec loop i =
    i >= t.k
    || (get_bit t.bits (((h1 + (i * h2)) land max_int) mod t.m_bits) && loop (i + 1))
  in
  loop 0

let add_value t v = add t (Value.hash v)
let mem_value t v = mem t (Value.hash v)

let estimated_fpr t ~n =
  let k = Float.of_int t.k and n = Float.of_int n and m = Float.of_int t.m_bits in
  Float.pow (1. -. exp (-.k *. n /. m)) k

let count_set_bits t =
  let total = ref 0 in
  Bytes.iter
    (fun c ->
       let x = ref (Char.code c) in
       while !x > 0 do
         total := !total + (!x land 1);
         x := !x lsr 1
       done)
    t.bits;
  !total
