(** Bloom filters (Bloom, CACM 1970 — reference [3] of the paper).

    Post-filtering streams the identifiers produced by a visible
    selection into a Bloom filter held in the device's tiny RAM, then
    probes each candidate SKT row against it: compact, no false
    negatives, and a false-positive rate that degrades gracefully as
    RAM shrinks — the properties the paper cites for RAM-constrained
    environments. *)

type t

val create : m_bits:int -> k:int -> t
(** Raises [Invalid_argument] unless [m_bits > 0] and [k > 0]. *)

val m_bits : t -> int
val k : t -> int
val size_bytes : t -> int
(** RAM footprint of the bit array. *)

val optimal_k : m_bits:int -> n:int -> int
(** k minimizing the false-positive rate: [ln 2 * m / n], at least 1. *)

val bits_for_fpr : n:int -> fpr:float -> int
(** Bits needed for [n] insertions at target false-positive rate. *)

val sized_for : budget_bytes:int -> n:int -> t
(** The best filter fitting a RAM budget: [m = 8 * budget],
    [k = optimal_k]. *)

val add : t -> int -> unit
(** Insert a pre-hashed key (e.g. a tuple identifier or
    [Value.hash]). *)

val mem : t -> int -> bool
(** No false negatives; false positives at the design rate. *)

val add_value : t -> Ghost_kernel.Value.t -> unit
val mem_value : t -> Ghost_kernel.Value.t -> bool

val estimated_fpr : t -> n:int -> float
(** Theoretical false-positive rate after [n] insertions:
    [(1 - e^(-kn/m))^k]. *)

val count_set_bits : t -> int
