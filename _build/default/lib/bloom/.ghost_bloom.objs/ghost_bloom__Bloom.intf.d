lib/bloom/bloom.mli: Ghost_kernel
