lib/bloom/bloom.ml: Bytes Char Float Ghost_kernel
