module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation

(** The demonstration dataset: the Figure 3 medical schema (diabetes
    scenario) populated synthetically. The paper's demo uses one
    million prescriptions; scales below keep the same shape at smaller
    sizes for tests and default benchmark runs.

    Generation is deterministic in the seed. Value frequencies are
    Zipf-skewed so that equality predicates span a wide selectivity
    range, and visit dates are uniform over a fixed window so that a
    date cutoff dials visible selectivity continuously. *)

type scale = {
  doctors : int;
  patients : int;
  medicines : int;
  visits : int;
  prescriptions : int;
  theta : float;  (** Zipf exponent for categorical columns *)
}

val tiny : scale  (** 400 prescriptions — unit tests *)

val small : scale  (** 10 k prescriptions — default benches *)

val medium : scale  (** 100 k prescriptions *)

val paper : scale  (** 1 M prescriptions, the demo cardinality *)

val scale_with_prescriptions : int -> scale
(** A proportional scale with the given root cardinality. *)

val ddl : string
(** The [CREATE TABLE] script, [HIDDEN] markers included (the Visit
    declaration is the paper's Section 2 example). *)

val schema : unit -> Schema.t

val date_lo : int
val date_hi : int
(** Visit dates are uniform in [[date_lo, date_hi]] (2004-01-01 to
    2006-12-31). *)

val date_cutoff_for_selectivity : float -> int
(** [date_cutoff_for_selectivity s] — the date [d] such that
    [Date > d] selects a fraction [s] of visits. *)

val purposes : string array
(** Visit purposes by Zipf rank (rank 1 first). Includes
    ["Sclerosis"]. *)

val medicine_types : string array
(** Medicine types by Zipf rank. Includes ["Antibiotic"]. *)

val countries : string array

val generate : ?seed:int -> scale -> (string * Relation.tuple list) list
(** Full rows per table (key first), dense ids 1..N — ready for both
    the public store and the GhostDB loader. *)
