module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Bind = Ghost_sql.Bind

(** Reference query evaluator: a naive, trusted, in-memory
    implementation of the SPJ semantics over the full (hidden +
    visible) data. The test suite checks that {e every} device plan
    returns the same multiset of tuples as this evaluator. *)

type db = (string * Relation.t) list

val db_of_rows : Schema.t -> (string * Relation.tuple list) list -> db

val run : Schema.t -> db -> Bind.query -> Value.t array list
(** One output row per tuple of the query's top table that joins to
    satisfying tuples in every other FROM table, projected as the
    query lists. Order unspecified. *)

val sort_rows : Value.t array list -> Value.t array list
(** Canonical order, for multiset comparison. *)
