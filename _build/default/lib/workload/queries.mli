(** The demonstration query set.

    [demo] is the paper's Section 4 example; the others exercise every
    strategy dimension: visible/hidden mixes at different levels of the
    tree, ranges, single-table selections, and the deep Doctor–Patient
    linkage the demo's privacy story is about. *)

val demo : string
(** SELECT Med.Name, Pre.Quantity, Vis.Date ... (the paper's
    query verbatim, with a 2006-11-05 date cutoff). *)

val demo_with :
  ?date_selectivity:float -> ?purpose:string -> ?med_type:string -> unit -> string
(** The demo query with tunable predicate parameters:
    [date_selectivity] picks the Vis.Date cutoff (fraction of visits
    selected); [purpose] and [med_type] replace the hidden/visible
    equality constants. *)

val all : (string * string) list
(** [(name, sql)] — the full suite. *)
