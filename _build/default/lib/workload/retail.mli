module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation

(** A second workload: the paper's introduction also motivates hiding
    {e corporate product information}. Here a retailer publishes its
    catalog and order dates but hides unit costs (margins!), discounts,
    customer identities and the purchase linkage.

    The tree differs from the medical schema: the fact table
    (LineItem) sits over a two-level Purchase → Customer chain plus a
    flat Product dimension, with cardinality ratios inverted relative
    to Figure 3 — useful for checking that nothing is tuned to one
    shape. *)

type scale = {
  customers : int;
  products : int;
  purchases : int;
  lineitems : int;
  theta : float;
}

val tiny : scale
val small : scale

val ddl : string
val schema : unit -> Schema.t

val segments : string array
val regions : string array
val categories : string array

val generate : ?seed:int -> scale -> (string * Relation.tuple list) list

val queries : (string * string) list
(** Named queries exercising hidden margins, customer privacy and
    aggregate reporting. *)
