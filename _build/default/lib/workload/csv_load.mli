module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation

(** Minimal CSV ingestion: turn delimiter-separated text into
    loader-ready tuples, typed against the schema.

    Format: first line is a header naming every column of the table
    (key included, any order); each further non-empty line is one row.
    Values are parsed by column type — INTEGER and FLOAT literals,
    DATE as [YYYY-MM-DD], CHAR(n) taken verbatim. No quoting: the
    separator must not occur inside values (use a tab separator for
    free-text columns). *)

exception Csv_error of { line : int; message : string }

val parse_table :
  ?separator:char -> Schema.t -> table:string -> string -> Relation.tuple list
(** [parse_table schema ~table text] — tuples in schema layout (key
    first). Raises {!Csv_error} with a 1-based line number on malformed
    input. *)

val parse_file :
  ?separator:char -> Schema.t -> table:string -> string -> Relation.tuple list
(** Same, reading from a file path. *)
