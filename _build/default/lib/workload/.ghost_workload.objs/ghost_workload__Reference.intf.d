lib/workload/reference.mli: Ghost_kernel Ghost_relation Ghost_sql
