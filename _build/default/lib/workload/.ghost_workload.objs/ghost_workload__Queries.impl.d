lib/workload/queries.ml: Ghost_kernel Medical Printf
