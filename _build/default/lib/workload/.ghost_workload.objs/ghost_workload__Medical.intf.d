lib/workload/medical.mli: Ghost_kernel Ghost_relation
