lib/workload/queries.mli:
