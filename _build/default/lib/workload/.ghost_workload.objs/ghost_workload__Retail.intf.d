lib/workload/retail.mli: Ghost_relation
