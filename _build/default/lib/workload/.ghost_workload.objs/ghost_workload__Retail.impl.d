lib/workload/retail.ml: Array Float Ghost_kernel Ghost_relation Ghost_sql List Printf
