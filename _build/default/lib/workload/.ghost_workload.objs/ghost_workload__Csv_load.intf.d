lib/workload/csv_load.mli: Ghost_relation
