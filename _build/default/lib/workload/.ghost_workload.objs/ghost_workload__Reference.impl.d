lib/workload/reference.ml: Array Ghost_kernel Ghost_relation Ghost_sql Hashtbl Int List Printf
