lib/workload/csv_load.ml: Array Ghost_kernel Ghost_relation In_channel List Printf String
