module Value = Ghost_kernel.Value
module Date = Ghost_kernel.Date
module Rng = Ghost_kernel.Rng
module Zipf = Ghost_kernel.Zipf
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation

type scale = {
  customers : int;
  products : int;
  purchases : int;
  lineitems : int;
  theta : float;
}

let tiny = { customers = 20; products = 30; purchases = 120; lineitems = 500; theta = 0.8 }

let small =
  { customers = 400; products = 600; purchases = 3_000; lineitems = 12_000; theta = 0.8 }

let ddl = {|
CREATE TABLE Customer (
  CustID INTEGER PRIMARY KEY,
  Name CHAR(24) HIDDEN,
  Segment CHAR(12),
  Region CHAR(12));

CREATE TABLE Product (
  ProdID INTEGER PRIMARY KEY,
  Name CHAR(24),
  Category CHAR(16),
  Cost FLOAT HIDDEN);

CREATE TABLE Purchase (
  PurID INTEGER PRIMARY KEY,
  Date DATE,
  Total FLOAT HIDDEN,
  CustID INTEGER REFERENCES Customer(CustID) HIDDEN);

CREATE TABLE LineItem (
  LineID INTEGER PRIMARY KEY,
  Quantity INTEGER,
  Discount FLOAT HIDDEN,
  PurID INTEGER REFERENCES Purchase(PurID) HIDDEN,
  ProdID INTEGER REFERENCES Product(ProdID) HIDDEN);
|}

let schema () = Ghost_sql.Bind.ddl_to_schema (Ghost_sql.Parser.parse_ddl ddl)

let segments = [| "consumer"; "corporate"; "public"; "smb" |]
let regions = [| "north"; "south"; "east"; "west"; "export" |]

let categories = [|
  "electronics"; "furniture"; "paper"; "appliances"; "tools"; "textiles";
  "chemicals"; "packaging";
|]

let date_lo = Date.of_ymd 2005 1 1
let date_hi = Date.of_ymd 2006 12 31

let generate ?(seed = 424242) scale =
  let rng = Rng.create seed in
  let z_cat = Zipf.create ~n:(Array.length categories) ~theta:scale.theta in
  let z_seg = Zipf.create ~n:(Array.length segments) ~theta:scale.theta in
  let zipf_pick z (values : string array) =
    values.((Zipf.sample z rng - 1) mod Array.length values)
  in
  let customers =
    List.init scale.customers (fun i ->
      [|
        Value.Int (i + 1);
        Value.Str (Printf.sprintf "Cust-%05d" (i + 1));
        Value.Str (zipf_pick z_seg segments);
        Value.Str regions.(Rng.int rng (Array.length regions));
      |])
  in
  let products =
    List.init scale.products (fun i ->
      [|
        Value.Int (i + 1);
        Value.Str (Printf.sprintf "Prod-%05d" (i + 1));
        Value.Str (zipf_pick z_cat categories);
        Value.Float (1.0 +. Rng.float rng 500.);
      |])
  in
  let purchases =
    List.init scale.purchases (fun i ->
      [|
        Value.Int (i + 1);
        Value.Date (Rng.int_in rng date_lo date_hi);
        Value.Float (10. +. Rng.float rng 5000.);
        Value.Int (1 + Rng.int rng scale.customers);
      |])
  in
  let lineitems =
    List.init scale.lineitems (fun i ->
      [|
        Value.Int (i + 1);
        Value.Int (Rng.int_in rng 1 20);
        Value.Float (Float.of_int (Rng.int rng 5) /. 10.);
        Value.Int (1 + Rng.int rng scale.purchases);
        Value.Int (1 + Rng.int rng scale.products);
      |])
  in
  [
    ("Customer", customers);
    ("Product", products);
    ("Purchase", purchases);
    ("LineItem", lineitems);
  ]

let queries = [
  ( "margin_exposure",
    (* which public catalog items moved with a heavy hidden discount *)
    {|SELECT Prod.Name, Li.Quantity, Li.Discount
FROM Product Prod, LineItem Li
WHERE Prod.Category = 'electronics' AND Li.Discount >= 0.3
  AND Li.ProdID = Prod.ProdID|} );
  ( "big_corporate_orders",
    {|SELECT Cust.Name, Pur.Total, Pur.Date
FROM Customer Cust, Purchase Pur, LineItem Li
WHERE Cust.Segment = 'corporate' AND Pur.Total > 4000.0
  AND Pur.Date > '2006-01-01'
  AND Li.PurID = Pur.PurID AND Pur.CustID = Cust.CustID|} );
  ( "region_volume",
    {|SELECT Cust.Region, COUNT(*), SUM(Li.Quantity)
FROM Customer Cust, Purchase Pur, LineItem Li
WHERE Li.PurID = Pur.PurID AND Pur.CustID = Cust.CustID
GROUP BY Cust.Region ORDER BY Cust.Region|} );
  ( "costly_products",
    {|SELECT Prod.ProdID, Prod.Cost
FROM Product Prod
WHERE Prod.Cost > 400.0 ORDER BY Prod.ProdID LIMIT 10|} );
]
