module Value = Ghost_kernel.Value
module Date = Ghost_kernel.Date
module Rng = Ghost_kernel.Rng
module Zipf = Ghost_kernel.Zipf
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Parser = Ghost_sql.Parser
module Bind = Ghost_sql.Bind

type scale = {
  doctors : int;
  patients : int;
  medicines : int;
  visits : int;
  prescriptions : int;
  theta : float;
}

let scale_with_prescriptions n =
  {
    doctors = max 3 (n / 200);
    patients = max 5 (n / 20);
    medicines = max 5 (n / 100);
    visits = max 5 (n / 4);
    prescriptions = n;
    theta = 0.8;
  }

let tiny = scale_with_prescriptions 400
let small = scale_with_prescriptions 10_000
let medium = scale_with_prescriptions 100_000
let paper = scale_with_prescriptions 1_000_000

let ddl = {|
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(20),
  Speciality CHAR(20),
  Zip INTEGER,
  Country CHAR(16));

CREATE TABLE Patient (
  PatID INTEGER PRIMARY KEY,
  Name CHAR(20) HIDDEN,
  Age INTEGER,
  BodyMassIndex FLOAT HIDDEN,
  Country CHAR(16));

CREATE TABLE Medicine (
  MedID INTEGER PRIMARY KEY,
  Name CHAR(20),
  Effect CHAR(20),
  Type CHAR(16));

CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(20) HIDDEN,
  DocID INTEGER REFERENCES Doctor(DocID) HIDDEN,
  PatID INTEGER REFERENCES Patient(PatID) HIDDEN);

CREATE TABLE Prescription (
  PreID INTEGER PRIMARY KEY,
  Quantity INTEGER HIDDEN,
  Frequency INTEGER,
  WhenWritten DATE HIDDEN,
  MedID INTEGER REFERENCES Medicine(MedID) HIDDEN,
  VisID INTEGER REFERENCES Visit(VisID) HIDDEN);
|}

let schema () = Bind.ddl_to_schema (Parser.parse_ddl ddl)

let date_lo = Date.of_ymd 2004 1 1
let date_hi = Date.of_ymd 2006 12 31

let date_cutoff_for_selectivity s =
  if s < 0. || s > 1. then invalid_arg "Medical.date_cutoff_for_selectivity";
  let span = date_hi - date_lo in
  date_hi - int_of_float (Float.round (s *. Float.of_int span))

let purposes = [|
  "Checkup"; "Diabetes"; "Hypertension"; "Influenza"; "Sclerosis"; "Asthma";
  "Migraine"; "Fracture"; "Allergy"; "Bronchitis"; "Arthritis"; "Anemia";
  "Depression"; "Obesity"; "Insomnia"; "Dermatitis";
|]

let medicine_types = [|
  "Analgesic"; "Antibiotic"; "Antiviral"; "Antihistamine"; "Sedative";
  "Stimulant"; "Vaccine"; "Steroid"; "Diuretic"; "Antiseptic";
|]

let countries = [|
  "France"; "USA"; "Spain"; "Germany"; "Italy"; "Austria"; "Belgium";
  "Portugal"; "Greece"; "Norway";
|]

let specialities = [|
  "General"; "Cardiology"; "Endocrinology"; "Neurology"; "Oncology";
  "Pediatrics"; "Radiology"; "Surgery";
|]

let effects = [|
  "PainRelief"; "CuresInfection"; "LowersSugar"; "Calming"; "AntiViral";
  "Immunity"; "AntiInflammatory"; "Hydration";
|]

(* A pronounceable-ish deterministic name from an id. *)
let name_of prefix id = Printf.sprintf "%s-%05d" prefix id

let generate ?(seed = 20070923) scale =
  let rng = Rng.create seed in
  let zipf_pick (z : Zipf.t) rng (values : string array) =
    values.((Zipf.sample z rng - 1) mod Array.length values)
  in
  let z_country = Zipf.create ~n:(Array.length countries) ~theta:scale.theta in
  let z_purpose = Zipf.create ~n:(Array.length purposes) ~theta:scale.theta in
  let z_type = Zipf.create ~n:(Array.length medicine_types) ~theta:scale.theta in
  let doctors =
    List.init scale.doctors (fun i ->
      let id = i + 1 in
      [|
        Value.Int id;
        Value.Str (name_of "Dr" id);
        Value.Str specialities.(Rng.int rng (Array.length specialities));
        Value.Int (10000 + Rng.int rng 89999);
        Value.Str (zipf_pick z_country rng countries);
      |])
  in
  let patients =
    List.init scale.patients (fun i ->
      let id = i + 1 in
      [|
        Value.Int id;
        Value.Str (name_of "Pat" id);
        Value.Int (Rng.int_in rng 1 99);
        Value.Float (15. +. Rng.float rng 30.);
        Value.Str (zipf_pick z_country rng countries);
      |])
  in
  let medicines =
    List.init scale.medicines (fun i ->
      let id = i + 1 in
      [|
        Value.Int id;
        Value.Str (name_of "Med" id);
        Value.Str effects.(Rng.int rng (Array.length effects));
        Value.Str (zipf_pick z_type rng medicine_types);
      |])
  in
  let visits =
    List.init scale.visits (fun i ->
      let id = i + 1 in
      [|
        Value.Int id;
        Value.Date (Rng.int_in rng date_lo date_hi);
        Value.Str (zipf_pick z_purpose rng purposes);
        Value.Int (1 + Rng.int rng scale.doctors);
        Value.Int (1 + Rng.int rng scale.patients);
      |])
  in
  let prescriptions =
    List.init scale.prescriptions (fun i ->
      let id = i + 1 in
      [|
        Value.Int id;
        Value.Int (Rng.int_in rng 1 10);
        Value.Int (Rng.int_in rng 1 4);
        Value.Date (Rng.int_in rng date_lo date_hi);
        Value.Int (1 + Rng.int rng scale.medicines);
        Value.Int (1 + Rng.int rng scale.visits);
      |])
  in
  [
    ("Doctor", doctors);
    ("Patient", patients);
    ("Medicine", medicines);
    ("Visit", visits);
    ("Prescription", prescriptions);
  ]
