module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Predicate = Ghost_relation.Predicate
module Bind = Ghost_sql.Bind

type db = (string * Relation.t) list

let db_of_rows schema tables_with_rows =
  List.map
    (fun (name, rows) -> (name, Relation.create (Schema.find_table schema name) rows))
    tables_with_rows

let run schema db (q : Bind.query) =
  let rel name =
    try List.assoc name db
    with Not_found -> invalid_arg (Printf.sprintf "Reference.run: no data for %s" name)
  in
  let top = Schema.subtree_root schema q.Bind.tables in
  if not (List.mem top q.Bind.tables) then
    invalid_arg
      (Printf.sprintf
         "Reference.run: subtree root %s is not in the FROM clause (disconnected query)"
         top);
  (* Edges in an order that always extends from an already-bound table;
     q.join_edges are (parent, child) with parent closer to the root. *)
  let rec order bound remaining =
    match remaining with
    | [] -> []
    | _ ->
      let ready, later =
        List.partition (fun (p, _) -> List.mem p bound) remaining
      in
      if ready = [] then
        invalid_arg "Reference.run: join edges do not form a connected tree";
      ready @ order (bound @ List.map snd ready) later
  in
  let edges = order [ top ] q.Bind.join_edges in
  let fk_col_of parent child =
    match List.assoc_opt child (Schema.children schema parent) with
    | Some fk -> fk
    | None ->
      invalid_arg
        (Printf.sprintf "Reference.run: %s -> %s is not a schema edge" parent child)
  in
  let top_rel = rel top in
  let results = ref [] in
  Relation.iter
    (fun top_row ->
       (* Bind every FROM table's row by walking the edges. *)
       let env = Hashtbl.create 8 in
       Hashtbl.replace env top top_row;
       let ok =
         List.for_all
           (fun (parent, child) ->
              match Hashtbl.find_opt env parent with
              | None -> false
              | Some parent_row ->
                let parent_rel = rel parent in
                (match Relation.value parent_rel parent_row (fk_col_of parent child) with
                 | Value.Int fk ->
                   (match Relation.find (rel child) fk with
                    | Some child_row ->
                      Hashtbl.replace env child child_row;
                      true
                    | None -> false)
                 | Value.Null | Value.Float _ | Value.Date _ | Value.Str _ -> false))
           edges
       in
       if ok then begin
         let selected =
           List.for_all
             (fun (p : Predicate.t) ->
                match Hashtbl.find_opt env p.Predicate.table with
                | None -> invalid_arg "Reference.run: predicate on unbound table"
                | Some row ->
                  Predicate.holds p (Relation.value (rel p.Predicate.table) row p.Predicate.column))
             q.Bind.selections
         in
         if selected then begin
           let row =
             Array.of_list
               (List.map
                  (fun (table, column) ->
                     match Hashtbl.find_opt env table with
                     | None -> invalid_arg "Reference.run: projection on unbound table"
                     | Some r -> Relation.value (rel table) r column)
                  q.Bind.projections)
           in
           results := row :: !results
         end
       end)
    top_rel;
  let rows =
    match q.Bind.aggregate with
    | None -> !results
    | Some spec -> Ghost_sql.Aggregate.apply spec !results
  in
  Ghost_sql.Postproc.apply ~order_by:q.Bind.order_by ~limit:q.Bind.limit rows

let compare_rows (a : Value.t array) (b : Value.t array) =
  let rec loop i =
    if i >= Array.length a || i >= Array.length b then
      Int.compare (Array.length a) (Array.length b)
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let sort_rows rows = List.sort compare_rows rows
