module Date = Ghost_kernel.Date

let demo_with ?(date_selectivity = 0.05) ?(purpose = "Sclerosis")
    ?(med_type = "Antibiotic") () =
  let cutoff = Medical.date_cutoff_for_selectivity date_selectivity in
  Printf.sprintf
    {|SELECT Med.Name, Pre.Quantity, Vis.Date
FROM Medicine Med, Prescription Pre, Visit Vis
WHERE Vis.Date > '%s'
  AND Vis.Purpose = '%s'
  AND Med.Type = '%s'
  AND Med.MedID = Pre.MedID
  AND Vis.VisID = Pre.VisID|}
    (Date.to_string cutoff) purpose med_type

let demo = demo_with ~date_selectivity:0.05 ()

let all = [
  ("demo", demo);
  ( "hidden_only",
    {|SELECT Pre.PreID, Pre.Quantity
FROM Prescription Pre, Visit Vis
WHERE Vis.Purpose = 'Sclerosis' AND Vis.VisID = Pre.VisID|} );
  ( "visible_only",
    {|SELECT Med.Name, Pre.Frequency
FROM Medicine Med, Prescription Pre
WHERE Med.Type = 'Antibiotic' AND Med.MedID = Pre.MedID|} );
  ( "deep_climb",
    {|SELECT Pre.PreID, Doc.Name
FROM Prescription Pre, Visit Vis, Doctor Doc
WHERE Doc.Country = 'Spain'
  AND Vis.DocID = Doc.DocID AND Pre.VisID = Vis.VisID|} );
  ( "doctor_patient",
    {|SELECT Doc.Name, Pat.Age
FROM Doctor Doc, Patient Pat, Visit Vis
WHERE Doc.Country = 'Spain' AND Pat.Age > 60
  AND Vis.DocID = Doc.DocID AND Vis.PatID = Pat.PatID|} );
  ( "range_hidden",
    {|SELECT Pre.PreID, Pre.Quantity
FROM Prescription Pre
WHERE Pre.Quantity BETWEEN 8 AND 10|} );
  ( "single_table_visible",
    {|SELECT Doc.Name, Doc.Speciality
FROM Doctor Doc
WHERE Doc.Country = 'France'|} );
  ( "five_way",
    {|SELECT Med.Name, Doc.Name, Pat.Age, Vis.Date, Pre.Quantity
FROM Medicine Med, Prescription Pre, Visit Vis, Doctor Doc, Patient Pat
WHERE Vis.Purpose = 'Diabetes'
  AND Med.Type = 'Antibiotic'
  AND Pat.Age > 50
  AND Doc.Country = 'France'
  AND Med.MedID = Pre.MedID AND Vis.VisID = Pre.VisID
  AND Vis.DocID = Doc.DocID AND Vis.PatID = Pat.PatID|} );
]
