module Value = Ghost_kernel.Value
module Date = Ghost_kernel.Date
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation

exception Csv_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Csv_error { line; message })) fmt

let parse_value ~line (col : Column.t) raw =
  let raw = String.trim raw in
  match col.Column.ty with
  | Value.T_int ->
    (match int_of_string_opt raw with
     | Some i -> Value.Int i
     | None -> fail line "column %s: %S is not an integer" col.Column.name raw)
  | Value.T_float ->
    (match float_of_string_opt raw with
     | Some f -> Value.Float f
     | None -> fail line "column %s: %S is not a float" col.Column.name raw)
  | Value.T_date ->
    (try Value.Date (Date.of_string raw)
     with Invalid_argument _ ->
       fail line "column %s: %S is not a YYYY-MM-DD date" col.Column.name raw)
  | Value.T_char n ->
    if String.length raw > n then
      fail line "column %s: %S exceeds CHAR(%d)" col.Column.name raw n;
    Value.Str raw

let parse_table ?(separator = ',') schema ~table text =
  let tbl =
    try Schema.find_table schema table
    with Not_found -> fail 0 "unknown table %s" table
  in
  let cols = Schema.all_columns tbl in
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  match lines with
  | [] -> fail 0 "empty input (a header line is required)"
  | (header_line, header) :: rows ->
    let names = List.map String.trim (String.split_on_char separator header) in
    if List.sort_uniq String.compare names <> List.sort String.compare names then
      fail header_line "duplicate column in header";
    List.iter
      (fun (c : Column.t) ->
         if not (List.mem c.Column.name names) then
           fail header_line "header is missing column %s" c.Column.name)
      cols;
    List.iter
      (fun name ->
         if not (List.exists (fun (c : Column.t) -> c.Column.name = name) cols) then
           fail header_line "header names unknown column %s" name)
      names;
    (* position of each schema column in the CSV line *)
    let position name =
      let rec loop i = function
        | [] -> assert false
        | n :: rest -> if n = name then i else loop (i + 1) rest
      in
      loop 0 names
    in
    List.map
      (fun (line, text) ->
         let fields = Array.of_list (String.split_on_char separator text) in
         if Array.length fields <> List.length names then
           fail line "expected %d fields, found %d" (List.length names)
             (Array.length fields);
         Array.of_list
           (List.map
              (fun (c : Column.t) ->
                 parse_value ~line c fields.(position c.Column.name))
              cols))
      rows

let parse_file ?separator schema ~table path =
  let text = In_channel.with_open_text path In_channel.input_all in
  parse_table ?separator schema ~table text
