lib/baseline/baseline.ml: Array Bytes Fun Ghost_device Ghost_flash Ghost_kernel Ghost_public Ghost_relation Ghost_sql Ghost_store Ghostdb Hashtbl Int List Printf String
