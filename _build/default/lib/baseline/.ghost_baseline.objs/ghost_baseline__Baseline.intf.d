lib/baseline/baseline.mli: Ghost_device Ghost_kernel Ghost_public Ghost_sql Ghostdb
