module Value = Ghost_kernel.Value
module Device = Ghost_device.Device
module Bind = Ghost_sql.Bind
module Catalog = Ghostdb.Catalog
module Public_store = Ghost_public.Public_store

(** The query-processing baselines GhostDB is measured against.

    Section 4 of the paper: computing SPJ queries on the device "leads
    to unacceptable performance with last resort join algorithms (like
    hash joins) as well as with known indexing techniques like join
    indices". Both are implemented here over the same device model and
    the same hidden column stores, without SKTs or climbing indexes:

    - {!Grace_hash} — joins materialize foreign keys by per-record
      point reads and filter through grace-hash partitioning on the
      scratch Flash whenever the build side exceeds the RAM arena;
    - {!Sort_merge} — the classical join-index discipline: every join
      or filter step externally sorts the record stream on the join
      attribute and merge-joins it against a sequential scan.

    Both return the same rows as the GhostDB executor (the test suite
    checks all three against the reference evaluator); only their cost
    differs. *)

type algorithm =
  | Grace_hash
  | Sort_merge

val algorithm_name : algorithm -> string

type result = {
  rows : Value.t array list;
  row_count : int;
  elapsed_us : float;  (** simulated device time *)
  usage : Device.usage;
  ram_peak : int;
}

exception Baseline_error of string

val run : algorithm -> Catalog.t -> Public_store.t -> Bind.query -> result
