(* Tests for the NAND Flash simulator. *)

module Flash = Ghost_flash.Flash

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let small_geometry = { Flash.page_size = 64; pages_per_block = 4 }

let test_append_read_roundtrip () =
  let f = Flash.create ~geometry:small_geometry () in
  let p0 = Flash.append f (Bytes.of_string "hello") in
  let p1 = Flash.append f (Bytes.of_string "world") in
  check Alcotest.int "page ids" 0 p0;
  check Alcotest.int "page ids" 1 p1;
  check Alcotest.string "read back" "hello"
    (Bytes.to_string (Flash.read f ~page:p0 ~off:0 ~len:5));
  check Alcotest.string "partial" "orl"
    (Bytes.to_string (Flash.read f ~page:p1 ~off:1 ~len:3))

let test_padding_reads_zero () =
  let f = Flash.create ~geometry:small_geometry () in
  let p = Flash.append f (Bytes.of_string "ab") in
  let b = Flash.read f ~page:p ~off:0 ~len:10 in
  check Alcotest.string "padded" "ab\000\000\000\000\000\000\000\000" (Bytes.to_string b)

let test_page_overflow () =
  let f = Flash.create ~geometry:small_geometry () in
  Alcotest.check_raises "overflow"
    (Flash.Program_error "append: 65 bytes exceeds page size 64") (fun () ->
      ignore (Flash.append f (Bytes.make 65 'x')))

let test_erase_and_reuse () =
  let f = Flash.create ~geometry:small_geometry () in
  for _ = 1 to 8 do
    ignore (Flash.append f (Bytes.of_string "data"))
  done;
  check Alcotest.int "8 pages" 8 (Flash.page_count f);
  Flash.erase_block f 0;
  (* pages 0-3 free again; next appends reuse them, no growth *)
  for _ = 1 to 4 do
    ignore (Flash.append f (Bytes.of_string "new"))
  done;
  check Alcotest.int "no growth after erase" 8 (Flash.page_count f);
  let s = Flash.stats f in
  check Alcotest.int "one erase" 1 s.Flash.block_erases

let test_read_erased_page_fails () =
  let f = Flash.create ~geometry:small_geometry () in
  ignore (Flash.append f (Bytes.of_string "x"));
  Flash.erase_block f 0;
  Alcotest.check_raises "read erased" (Invalid_argument "Flash.read: page 0 is erased")
    (fun () -> ignore (Flash.read f ~page:0 ~off:0 ~len:1))

let test_cost_accounting () =
  let cost = {
    Flash.read_seek_us = 10.;
    read_byte_us = 1.;
    program_seek_us = 100.;
    program_byte_us = 2.;
    erase_us = 1000.;
  } in
  let f = Flash.create ~geometry:small_geometry ~cost () in
  ignore (Flash.append f (Bytes.make 10 'a'));
  ignore (Flash.read f ~page:0 ~off:0 ~len:4);
  Flash.erase_block f 0;
  let s = Flash.stats f in
  check (Alcotest.float 1e-6) "write time" (100. +. 20. +. 1000.) s.Flash.write_time_us;
  check (Alcotest.float 1e-6) "read time" (10. +. 4.) s.Flash.read_time_us;
  check Alcotest.int "bytes" 10 s.Flash.bytes_programmed;
  check Alcotest.int "bytes read" 4 s.Flash.bytes_read

let test_write_ratio_calibration () =
  List.iter
    (fun ratio ->
       let cost = Flash.cost_with_write_ratio ratio in
       let g = Flash.default_geometry in
       let read_full =
         cost.Flash.read_seek_us
         +. (Float.of_int g.Flash.page_size *. cost.Flash.read_byte_us)
       in
       let prog_full =
         cost.Flash.program_seek_us
         +. (Float.of_int g.Flash.page_size *. cost.Flash.program_byte_us)
       in
       check (Alcotest.float 1e-6) "ratio" ratio (prog_full /. read_full))
    [ 1.; 3.; 5.; 10. ]

let test_erase_live_blocks () =
  let f = Flash.create ~geometry:small_geometry () in
  for _ = 1 to 6 do
    ignore (Flash.append f (Bytes.of_string "s"))
  done;
  Flash.erase_live_blocks f;
  check Alcotest.int "two blocks erased" 2 (Flash.stats f).Flash.block_erases;
  check Alcotest.int "nothing live" 0 (Flash.live_bytes f);
  Flash.erase_live_blocks f;
  check Alcotest.int "idempotent" 2 (Flash.stats f).Flash.block_erases

let test_stats_diff () =
  let f = Flash.create ~geometry:small_geometry () in
  ignore (Flash.append f (Bytes.of_string "a"));
  let before = Flash.stats f in
  ignore (Flash.append f (Bytes.of_string "b"));
  let d = Flash.diff_stats ~after:(Flash.stats f) ~before in
  check Alcotest.int "one program in window" 1 d.Flash.page_programs

let prop_roundtrip_random =
  QCheck.Test.make ~name:"flash content roundtrip" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 1 20) (string_of_size (QCheck.Gen.int_range 0 64)))
    (fun contents ->
       let f = Flash.create ~geometry:small_geometry () in
       let pages = List.map (fun s -> (Flash.append f (Bytes.of_string s), s)) contents in
       List.for_all
         (fun (p, s) ->
            Bytes.to_string (Flash.read f ~page:p ~off:0 ~len:(String.length s)) = s)
         pages)

let suite = [
  Alcotest.test_case "append/read roundtrip" `Quick test_append_read_roundtrip;
  Alcotest.test_case "short pages read back padded" `Quick test_padding_reads_zero;
  Alcotest.test_case "page overflow rejected" `Quick test_page_overflow;
  Alcotest.test_case "erase and reuse" `Quick test_erase_and_reuse;
  Alcotest.test_case "read of erased page fails" `Quick test_read_erased_page_fails;
  Alcotest.test_case "cost accounting" `Quick test_cost_accounting;
  Alcotest.test_case "write-ratio calibration" `Quick test_write_ratio_calibration;
  Alcotest.test_case "erase_live_blocks" `Quick test_erase_live_blocks;
  Alcotest.test_case "stats diff" `Quick test_stats_diff;
  qtest prop_roundtrip_random;
]
