(* Inserts after the load: delta-log correctness under every plan,
   validation, and Flash/privacy behaviour. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Insert = Ghostdb.Insert
module Baseline = Ghost_baseline.Baseline

let check = Alcotest.check

(* Fresh instance per test (inserts are stateful). *)
let make () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  (db, rows)

let scale = Medical.tiny

(* A deterministic batch of new prescriptions referencing loaded
   dimension rows. *)
let new_prescriptions ?(seed = 5) db n =
  let rng = Rng.create seed in
  let next = Medical.tiny.Medical.prescriptions + Ghost_db.delta_count db + 1 in
  List.init n (fun i ->
    [|
      Value.Int (next + i);
      Value.Int (Rng.int_in rng 1 10);
      Value.Int (Rng.int_in rng 1 4);
      Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
      Value.Int (1 + Rng.int rng scale.Medical.medicines);
      Value.Int (1 + Rng.int rng scale.Medical.visits);
    |])

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let test_insert_visible_through_queries () =
  let db, rows = make () in
  let batch = new_prescriptions db 30 in
  Ghost_db.insert db batch;
  check Alcotest.int "delta count" 30 (Ghost_db.delta_count db);
  (* expected = reference over the full data *)
  let full_rows =
    List.map
      (fun (name, rs) ->
         if name = "Prescription" then (name, rs @ batch) else (name, rs))
      rows
  in
  let refdb = Reference.db_of_rows (Ghost_db.schema db) full_rows in
  List.iter
    (fun (name, sql) ->
       let q = Ghost_db.bind db sql in
       let expected = Reference.run (Ghost_db.schema db) refdb q in
       let panel = Ghost_db.plans db sql in
       List.iter
         (fun (plan, _) ->
            let r = Ghost_db.run_plan db plan in
            if not (rows_equal r.Exec.rows expected) then
              Alcotest.failf "%s with delta: plan [%s] got %d rows, want %d" name
                plan.Plan.label r.Exec.row_count (List.length expected);
            check Alcotest.int "ram released" 0
              (Ram.in_use (Device.ram (Ghost_db.device db))))
         panel)
    Queries.all

let test_insert_aggregates_see_delta () =
  let db, _ = make () in
  let count_sql = "SELECT COUNT(*) FROM Prescription Pre" in
  let before =
    match (Ghost_db.query db count_sql).Exec.rows with
    | [ [| Value.Int n |] ] -> n
    | _ -> Alcotest.fail "count shape"
  in
  Ghost_db.insert db (new_prescriptions db 7);
  match (Ghost_db.query db count_sql).Exec.rows with
  | [ [| Value.Int n |] ] -> check Alcotest.int "count grows" (before + 7) n
  | _ -> Alcotest.fail "count shape"

let test_insert_validation () =
  let db, _ = make () in
  let next = Medical.tiny.Medical.prescriptions + 1 in
  let proto q f w m v =
    [| Value.Int next; Value.Int q; Value.Int f; Value.Date w; Value.Int m; Value.Int v |]
  in
  (* wrong key *)
  (try
     Ghost_db.insert db
       [ [| Value.Int 1; Value.Int 1; Value.Int 1; Value.Date 0; Value.Int 1; Value.Int 1 |] ];
     Alcotest.fail "expected key error"
   with Insert.Insert_error _ -> ());
  (* dangling fk *)
  (try
     Ghost_db.insert db [ proto 1 1 0 999_999 1 ];
     Alcotest.fail "expected fk error"
   with Insert.Insert_error _ -> ());
  (* wrong arity *)
  (try
     Ghost_db.insert db [ [| Value.Int next |] ];
     Alcotest.fail "expected arity error"
   with Insert.Insert_error _ -> ());
  (* type mismatch *)
  (try
     Ghost_db.insert db [ [| Value.Int next; Value.Str "x"; Value.Int 1; Value.Date 0; Value.Int 1; Value.Int 1 |] ];
     Alcotest.fail "expected type error"
   with Insert.Insert_error _ -> ());
  check Alcotest.int "nothing applied" 0 (Ghost_db.delta_count db)

let test_insert_costs_flash_writes () =
  let db, _ = make () in
  let flash = Device.flash (Ghost_db.device db) in
  let before = (Ghost_flash.Flash.stats flash).Ghost_flash.Flash.page_programs in
  Ghost_db.insert db (new_prescriptions db 10);
  let after = (Ghost_flash.Flash.stats flash).Ghost_flash.Flash.page_programs in
  check Alcotest.bool "programs happened" true (after > before)

let test_insert_privacy () =
  let db, _ = make () in
  Ghost_db.insert db (new_prescriptions db 20);
  Ghost_db.clear_trace db;
  ignore (Ghost_db.query db Queries.demo);
  let verdict = Ghost_db.audit db in
  check Alcotest.bool "still leak-free with delta" true verdict.Ghostdb.Privacy.ok

let test_baselines_refuse_delta () =
  let db, _ = make () in
  Ghost_db.insert db (new_prescriptions db 1);
  try
    ignore
      (Baseline.run Baseline.Grace_hash (Ghost_db.catalog db) (Ghost_db.public db)
         (Ghost_db.bind db Queries.demo));
    Alcotest.fail "expected Baseline_error"
  with Baseline.Baseline_error _ -> ()

let test_multiple_batches () =
  let db, rows = make () in
  let b1 = new_prescriptions ~seed:1 db 150 in
  Ghost_db.insert db b1;
  let b2 = new_prescriptions ~seed:2 db 150 in
  Ghost_db.insert db b2;
  check Alcotest.int "300 pending" 300 (Ghost_db.delta_count db);
  let full_rows =
    List.map
      (fun (name, rs) ->
         if name = "Prescription" then (name, rs @ b1 @ b2) else (name, rs))
      rows
  in
  let refdb = Reference.db_of_rows (Ghost_db.schema db) full_rows in
  let sql = Queries.demo_with ~date_selectivity:0.5 ~purpose:"Checkup" () in
  let q = Ghost_db.bind db sql in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  let r = Ghost_db.query db sql in
  check Alcotest.bool "two batches visible" true (rows_equal r.Exec.rows expected);
  (* a DeltaScan operator must have run *)
  check Alcotest.bool "delta scan ran" true
    (List.exists (fun o -> o.Exec.op_label = "DeltaScan") r.Exec.ops)

let suite = [
  Alcotest.test_case "inserted rows visible to every plan" `Slow
    test_insert_visible_through_queries;
  Alcotest.test_case "aggregates see the delta" `Quick test_insert_aggregates_see_delta;
  Alcotest.test_case "validation applies atomically" `Quick test_insert_validation;
  Alcotest.test_case "inserts cost flash programs" `Quick test_insert_costs_flash_writes;
  Alcotest.test_case "privacy holds with delta" `Quick test_insert_privacy;
  Alcotest.test_case "baselines refuse pending inserts" `Quick test_baselines_refuse_delta;
  Alcotest.test_case "multiple batches + DeltaScan op" `Quick test_multiple_batches;
]
