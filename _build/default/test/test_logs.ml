(* Direct unit tests of the append-only logs (insert delta, deletion
   tombstones): encoding, Flash behaviour, write amplification. *)

module Value = Ghost_kernel.Value
module Flash = Ghost_flash.Flash
module Delta_log = Ghostdb.Delta_log
module Tombstone_log = Ghostdb.Tombstone_log

let check = Alcotest.check

let flash () = Flash.create ~geometry:{ Flash.page_size = 256; pages_per_block = 8 } ()

let make_delta f =
  Delta_log.create f ~table:"R" ~levels:[ "R"; "A"; "B" ]
    ~hidden_cols:[ ("q", Value.T_int); ("s", Value.T_char 8) ]

let test_delta_roundtrip () =
  let f = flash () in
  let log = make_delta f in
  check Alcotest.int "record bytes" (12 + 8 + 8) (Delta_log.record_bytes log);
  for i = 1 to 25 do
    Delta_log.append log
      ~ids:[| 100 + i; i; (2 * i) + 1 |]
      ~hidden:[| Value.Int (i * 3); Value.Str (Printf.sprintf "s%d" i) |]
  done;
  check Alcotest.int "count" 25 (Delta_log.count log);
  let seen = ref 0 in
  Delta_log.scan log (fun r ->
    incr seen;
    let i = !seen in
    check Alcotest.(array int) "ids" [| 100 + i; i; (2 * i) + 1 |] r.Delta_log.ids;
    check Alcotest.bool "hidden value" true
      (Value.equal (Value.Int (i * 3)) (Delta_log.hidden_value log r "q"));
    check Alcotest.bool "hidden assoc" true
      (List.assoc "s" (Delta_log.hidden_assoc log r)
       = Value.Str (Printf.sprintf "s%d" i)));
  check Alcotest.int "scanned all" 25 !seen

let test_delta_validation () =
  let log = make_delta (flash ()) in
  (try
     Delta_log.append log ~ids:[| 1 |] ~hidden:[| Value.Int 1; Value.Str "a" |];
     Alcotest.fail "expected misaligned ids"
   with Invalid_argument _ -> ());
  try
    Delta_log.append log ~ids:[| 1; 2; 3 |] ~hidden:[| Value.Int 1 |];
    Alcotest.fail "expected misaligned hidden"
  with Invalid_argument _ -> ()

let test_delta_write_amplification () =
  let f = flash () in
  let log = make_delta f in
  (* 256-byte pages, 28-byte records: 9 per page. Every append
     re-programs the tail page. *)
  for i = 1 to 9 do
    Delta_log.append log ~ids:[| i; 1; 1 |] ~hidden:[| Value.Int 0; Value.Str "" |]
  done;
  let s = Flash.stats f in
  check Alcotest.int "one program per append" 9 s.Flash.page_programs;
  check Alcotest.bool "dead bytes accumulate" true (Delta_log.dead_bytes log > 0);
  check Alcotest.int "live = 9 records" (9 * 28) (Delta_log.size_bytes log)

let test_tombstones () =
  let f = flash () in
  let log = Tombstone_log.create f ~table:"R" in
  Tombstone_log.append log [ 5; 1; 9 ];
  Tombstone_log.append log [ 2 ];
  check Alcotest.int "count" 4 (Tombstone_log.count log);
  check Alcotest.bool "mem" true (Tombstone_log.mem log 9);
  check Alcotest.bool "not mem" false (Tombstone_log.mem log 3);
  check Alcotest.(array int) "sorted load" [| 1; 2; 5; 9 |]
    (Tombstone_log.load_sorted log);
  (* load is metered *)
  let before = (Flash.stats f).Flash.page_reads in
  ignore (Tombstone_log.load_sorted log);
  check Alcotest.bool "flash read charged" true
    ((Flash.stats f).Flash.page_reads > before)

let test_tombstones_many_pages () =
  let f = flash () in
  let log = Tombstone_log.create f ~table:"R" in
  (* 64 ids per 256-byte page: cross several pages *)
  Tombstone_log.append log (List.init 200 (fun i -> i + 1));
  check Alcotest.int "count" 200 (Tombstone_log.count log);
  check Alcotest.int "all back" 200 (Array.length (Tombstone_log.load_sorted log))

let suite = [
  Alcotest.test_case "delta roundtrip" `Quick test_delta_roundtrip;
  Alcotest.test_case "delta validation" `Quick test_delta_validation;
  Alcotest.test_case "delta write amplification" `Quick test_delta_write_amplification;
  Alcotest.test_case "tombstones" `Quick test_tombstones;
  Alcotest.test_case "tombstones across pages" `Quick test_tombstones_many_pages;
]
