(* Tests for the synthetic medical workload and the reference evaluator. *)

module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Relation = Ghost_relation.Relation
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Bind = Ghost_sql.Bind

let check = Alcotest.check

let rows = lazy (Medical.generate Medical.tiny)
let refdb = lazy (Reference.db_of_rows (Medical.schema ()) (Lazy.force rows))

let test_generation_shape () =
  let rows = Lazy.force rows in
  let count name = List.length (List.assoc name rows) in
  check Alcotest.int "prescriptions" Medical.tiny.Medical.prescriptions
    (count "Prescription");
  check Alcotest.int "visits" Medical.tiny.Medical.visits (count "Visit");
  check Alcotest.bool "doctors > 0" true (count "Doctor" > 0)

let test_generation_deterministic () =
  let a = Medical.generate ~seed:7 Medical.tiny in
  let b = Medical.generate ~seed:7 Medical.tiny in
  check Alcotest.bool "same data" true (a = b);
  let c = Medical.generate ~seed:8 Medical.tiny in
  check Alcotest.bool "different seed differs" true (a <> c)

let test_date_cutoff_selectivity () =
  let rows = Lazy.force rows in
  let visits = List.assoc "Visit" rows in
  let n = List.length visits in
  List.iter
    (fun s ->
       let cutoff = Medical.date_cutoff_for_selectivity s in
       let selected =
         List.length
           (List.filter
              (fun row ->
                 match row.(1) with
                 | Value.Date d -> d > cutoff
                 | _ -> false)
              visits)
       in
       let measured = Float.of_int selected /. Float.of_int n in
       if Float.abs (measured -. s) > 0.1 then
         Alcotest.failf "selectivity %.2f measured %.2f" s measured)
    [ 0.0; 0.1; 0.5; 0.9 ]

let test_reference_single_table () =
  let refdb = Lazy.force refdb in
  let schema = Medical.schema () in
  let q = Bind.bind schema "SELECT Doc.Name FROM Doctor Doc WHERE Doc.Zip >= 10000" in
  let out = Reference.run schema refdb q in
  (* every doctor has zip >= 10000 by construction *)
  check Alcotest.int "all doctors" (Relation.cardinality (List.assoc "Doctor" refdb))
    (List.length out)

let test_reference_join_counts () =
  let refdb = Lazy.force refdb in
  let schema = Medical.schema () in
  (* no predicates: one row per prescription *)
  let q =
    Bind.bind schema
      "SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Pre.VisID = Vis.VisID"
  in
  let out = Reference.run schema refdb q in
  check Alcotest.int "one row per prescription" Medical.tiny.Medical.prescriptions
    (List.length out)

let test_reference_predicate_pushdown_semantics () =
  let refdb = Lazy.force refdb in
  let schema = Medical.schema () in
  let q =
    Bind.bind schema
      "SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Vis.Purpose = \
       'Sclerosis' AND Pre.VisID = Vis.VisID"
  in
  let out = Reference.run schema refdb q in
  check Alcotest.bool "some sclerosis prescriptions" true (List.length out > 0);
  check Alcotest.bool "not all" true
    (List.length out < Medical.tiny.Medical.prescriptions)

let test_sort_rows_canonical () =
  let a = [| Value.Int 2 |] and b = [| Value.Int 1 |] in
  check Alcotest.bool "sorted" true
    (Reference.sort_rows [ a; b ] = [ b; a ])

let test_queries_bind () =
  let schema = Medical.schema () in
  List.iter (fun (_, sql) -> ignore (Bind.bind schema sql)) Queries.all

let suite = [
  Alcotest.test_case "generation shape" `Quick test_generation_shape;
  Alcotest.test_case "generation deterministic" `Quick test_generation_deterministic;
  Alcotest.test_case "date cutoff selectivity" `Quick test_date_cutoff_selectivity;
  Alcotest.test_case "reference single table" `Quick test_reference_single_table;
  Alcotest.test_case "reference join counts" `Quick test_reference_join_counts;
  Alcotest.test_case "reference predicate semantics" `Quick test_reference_predicate_pushdown_semantics;
  Alcotest.test_case "sort rows canonical" `Quick test_sort_rows_canonical;
  Alcotest.test_case "all demo queries bind" `Quick test_queries_bind;
]
