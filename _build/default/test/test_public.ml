(* Units for the untrusted world: visible store, traffic recording,
   spy analysis. *)

module Value = Ghost_kernel.Value
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate
module Trace = Ghost_device.Trace
module Public_store = Ghost_public.Public_store
module Spy = Ghost_public.Spy

let check = Alcotest.check

let small_schema () =
  Schema.create
    [
      Schema.table ~name:"P" ~key:"PID"
        [
          Column.make "v" Value.T_int;
          Column.make ~visibility:Column.Hidden "secret" (Value.T_char 8);
          Column.make ~visibility:Column.Hidden ~refs:"C" "fk" Value.T_int;
        ];
      Schema.table ~name:"C" ~key:"CID" [ Column.make "w" Value.T_int ];
    ]

let rows () =
  [
    ( "P",
      [
        [| Value.Int 1; Value.Int 10; Value.Str "s1"; Value.Int 1 |];
        [| Value.Int 2; Value.Int 20; Value.Str "s2"; Value.Int 2 |];
        [| Value.Int 3; Value.Int 10; Value.Str "s3"; Value.Int 1 |];
      ] );
    ("C", [ [| Value.Int 1; Value.Int 7 |]; [| Value.Int 2; Value.Int 8 |] ]);
  ]

let make () = (Public_store.create (small_schema ()) (rows ()), Trace.create ())

let test_hidden_columns_stripped () =
  let store, _ = make () in
  let sub = Public_store.visible_table store "P" in
  check Alcotest.int "only key + v remain" 2 (Schema.arity sub);
  check Alcotest.bool "secret gone" true
    (match Schema.find_column sub "secret" with
     | exception Not_found -> true
     | _ -> false)

let test_select_ids_and_traffic () =
  let store, trace = make () in
  let ids =
    Public_store.select_ids store ~trace
      (Predicate.make ~table:"P" ~column:"v" (Predicate.Eq (Value.Int 10)))
  in
  check Alcotest.(array int) "matching ids" [| 1; 3 |] ids;
  let events = Trace.events trace in
  check Alcotest.int "two events (sub-query + answer)" 2 (List.length events);
  check Alcotest.bool "answer bytes = 4 per id" true
    (List.exists (fun e -> e.Trace.bytes = 8 && e.Trace.link = Trace.Server_to_pc) events)

let test_hidden_predicate_rejected () =
  let store, trace = make () in
  (try
     ignore
       (Public_store.select_ids store ~trace
          (Predicate.make ~table:"P" ~column:"secret" (Predicate.Eq (Value.Str "s1"))));
     Alcotest.fail "expected Hidden_column"
   with Public_store.Hidden_column _ -> ());
  (* hidden FKs are just as unreachable *)
  (try
     ignore
       (Public_store.stream_column store ~trace ~table:"P" ~column:"fk" ~preds:[]);
     Alcotest.fail "expected Hidden_column (fk)"
   with Public_store.Hidden_column _ -> ());
  try
    ignore
      (Public_store.select_ids store ~trace
         (Predicate.make ~table:"P" ~column:"nonexistent" (Predicate.Eq (Value.Int 0))));
    Alcotest.fail "expected Hidden_column (unknown)"
  with Public_store.Hidden_column _ -> ()

let test_stream_column_filtered_sorted () =
  let store, trace = make () in
  let stream =
    Public_store.stream_column store ~trace ~table:"P" ~column:"v"
      ~preds:[ Predicate.make ~table:"P" ~column:"v" (Predicate.Ge (Value.Int 10)) ]
  in
  check Alcotest.int "all three" 3 (Array.length stream);
  check Alcotest.bool "sorted by id" true
    (stream = [| (1, Value.Int 10); (2, Value.Int 20); (3, Value.Int 10) |])

let test_append_rows_visible () =
  let store, trace = make () in
  Public_store.append_rows store "P"
    [ [| Value.Int 4; Value.Int 10; Value.Str "s4"; Value.Int 2 |] ];
  let ids =
    Public_store.select_ids store ~trace
      (Predicate.make ~table:"P" ~column:"v" (Predicate.Eq (Value.Int 10)))
  in
  check Alcotest.(array int) "new row visible" [| 1; 3; 4 |] ids;
  check Alcotest.int "cardinality" 4 (Public_store.cardinality store "P")

let test_spy_report_shape () =
  let store, trace = make () in
  ignore
    (Public_store.select_ids store ~trace
       (Predicate.make ~table:"P" ~column:"v" (Predicate.Lt (Value.Int 100))));
  Trace.record trace Trace.Pc_to_device
    (Trace.Id_list { table = "P"; count = 3 })
    ~bytes:12;
  Trace.record trace Trace.Device_to_display (Trace.Result_tuples { count = 1 })
    ~bytes:10;
  let r = Spy.analyze trace in
  check Alcotest.int "device payload zero" 0 r.Spy.device_outbound_payload_bytes;
  check Alcotest.int "one id list entered the device" 1
    (List.length r.Spy.id_lists_observed);
  check Alcotest.int "one sub-query observed" 1 (List.length r.Spy.queries_observed);
  (* the display event must not appear anywhere in the spy view *)
  let display_links =
    List.filter (fun (s : Spy.link_summary) -> s.Spy.link = Trace.Device_to_display)
      r.Spy.per_link
  in
  check Alcotest.int "no display link in report" 0 (List.length display_links)

let test_spy_flags_leak () =
  let trace = Trace.create () in
  Trace.record trace Trace.Device_to_pc
    (Trace.Value_stream { table = "P"; column = "secret"; count = 5 })
    ~bytes:40;
  let r = Spy.analyze trace in
  check Alcotest.int "leak counted" 40 r.Spy.device_outbound_payload_bytes

let suite = [
  Alcotest.test_case "hidden columns stripped at load" `Quick test_hidden_columns_stripped;
  Alcotest.test_case "select ids + traffic recording" `Quick test_select_ids_and_traffic;
  Alcotest.test_case "hidden predicates rejected" `Quick test_hidden_predicate_rejected;
  Alcotest.test_case "streams filtered and sorted" `Quick test_stream_column_filtered_sorted;
  Alcotest.test_case "append rows" `Quick test_append_rows_visible;
  Alcotest.test_case "spy report shape" `Quick test_spy_report_shape;
  Alcotest.test_case "spy flags a leak" `Quick test_spy_flags_leak;
]
