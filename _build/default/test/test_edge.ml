(* Executor edge cases: degenerate queries, tiny devices, selectivity
   extremes, duplicate projections. *)

module Value = Ghost_kernel.Value
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Schema = Ghost_relation.Schema

let check = Alcotest.check

let instance =
  lazy
    (let rows = Medical.generate Medical.tiny in
     let db = Ghost_db.of_schema (Medical.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let assert_matches_reference ?(msg = "") db refdb sql =
  let q = Ghost_db.bind db sql in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  let r = Ghost_db.query db sql in
  if not (rows_equal r.Exec.rows expected) then
    Alcotest.failf "%s: got %d rows, want %d (%s)" sql r.Exec.row_count
      (List.length expected) msg;
  r

let test_no_where_clause () =
  let db, refdb = Lazy.force instance in
  let r =
    assert_matches_reference db refdb "SELECT Doc.DocID, Doc.Name FROM Doctor Doc"
  in
  check Alcotest.int "all doctors" Medical.tiny.Medical.doctors r.Exec.row_count

let test_full_scan_of_root () =
  let db, refdb = Lazy.force instance in
  let r =
    assert_matches_reference db refdb "SELECT Pre.PreID FROM Prescription Pre"
  in
  check Alcotest.int "all prescriptions" Medical.tiny.Medical.prescriptions
    r.Exec.row_count

let test_key_only_projection_through_join () =
  let db, refdb = Lazy.force instance in
  ignore
    (assert_matches_reference db refdb
       "SELECT Pre.PreID, Vis.VisID, Doc.DocID FROM Prescription Pre, Visit Vis, \
        Doctor Doc WHERE Pre.VisID = Vis.VisID AND Vis.DocID = Doc.DocID")

let test_duplicate_projection () =
  let db, refdb = Lazy.force instance in
  ignore
    (assert_matches_reference db refdb
       "SELECT Doc.Name, Doc.Name, Doc.Zip FROM Doctor Doc WHERE Doc.Zip > 0")

let test_impossible_predicate () =
  let db, refdb = Lazy.force instance in
  let r =
    assert_matches_reference db refdb
      "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose = 'NoSuchPurpose'"
  in
  check Alcotest.int "empty" 0 r.Exec.row_count

let test_always_true_predicate () =
  let db, refdb = Lazy.force instance in
  let r =
    assert_matches_reference db refdb
      "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Date >= '1970-01-01'"
  in
  check Alcotest.int "everything" Medical.tiny.Medical.visits r.Exec.row_count

let test_hidden_range_plus_visible_range () =
  let db, refdb = Lazy.force instance in
  ignore
    (assert_matches_reference db refdb
       ("SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre, Visit Vis WHERE \
         Pre.Quantity BETWEEN 2 AND 9 AND Vis.Date BETWEEN '2004-06-01' AND \
         '2006-06-01' AND Pre.VisID = Vis.VisID"))

let test_in_on_hidden_index () =
  let db, refdb = Lazy.force instance in
  ignore
    (assert_matches_reference db refdb
       "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose IN ('Checkup', 'Diabetes', \
        'NoSuch')")

let test_ne_on_hidden_index () =
  let db, refdb = Lazy.force instance in
  ignore
    (assert_matches_reference db refdb
       "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose <> 'Checkup'")

let test_predicate_on_key_column () =
  let db, refdb = Lazy.force instance in
  let r =
    assert_matches_reference db refdb
      "SELECT Pre.PreID FROM Prescription Pre WHERE Pre.PreID <= 10"
  in
  check Alcotest.int "ten" 10 r.Exec.row_count

let test_tiny_ram_device_runs_everything () =
  (* 8 KiB arena: every query of the suite must still be exact. *)
  let rows = Medical.generate Medical.tiny in
  let config = { Device.default_config with Device.ram_budget = 8 * 1024 } in
  let db = Ghost_db.of_schema ~device_config:config (Medical.schema ()) rows in
  let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
  List.iter
    (fun (name, sql) ->
       let q = Ghost_db.bind db sql in
       let expected = Reference.run (Ghost_db.schema db) refdb q in
       let r = Ghost_db.query db sql in
       if not (rows_equal r.Exec.rows expected) then
         Alcotest.failf "%s under 8KiB RAM: wrong rows" name;
       check Alcotest.bool (name ^ " respected the budget") true
         (r.Exec.ram_peak <= 8 * 1024);
       check Alcotest.int (name ^ " released ram") 0
         (Ram.in_use (Device.ram (Ghost_db.device db))))
    Queries.all

let test_deep_query_without_intermediate_projection () =
  (* Doctor reached from Prescription: Visit appears in FROM only as a
     join hop. *)
  let db, refdb = Lazy.force instance in
  ignore
    (assert_matches_reference db refdb
       "SELECT Doc.Country, Pre.Frequency FROM Prescription Pre, Visit Vis, Doctor \
        Doc WHERE Doc.Country = 'France' AND Pre.Frequency >= 2 AND Pre.VisID = \
        Vis.VisID AND Vis.DocID = Doc.DocID")

let test_plan_describe_readable () =
  let db, _ = Lazy.force instance in
  let q = Ghost_db.bind db Queries.demo in
  let plan = Planner.all_post (Ghost_db.catalog db) q in
  let text = Plan.describe plan in
  check Alcotest.bool "mentions bloom" true
    (let contains sub s =
       let n = String.length sub in
       let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
       loop 0
     in
     contains "Bloom" text)

let test_empty_tables () =
  (* a database whose tables hold no rows at all *)
  let schema =
    Schema.create
      [
        Schema.table ~name:"F" ~key:"FID"
          [ Ghost_relation.Column.make ~visibility:Ghost_relation.Column.Hidden "h"
              Value.T_int;
            Ghost_relation.Column.make ~visibility:Ghost_relation.Column.Hidden
              ~refs:"D" "fk" Value.T_int ];
        Schema.table ~name:"D" ~key:"DID"
          [ Ghost_relation.Column.make "v" Value.T_int ];
      ]
  in
  let db = Ghost_db.of_schema schema [ ("F", []); ("D", []) ] in
  let r =
    Ghost_db.query db
      "SELECT F.FID FROM F, D WHERE F.h = 1 AND D.v = 2 AND F.fk = D.DID"
  in
  check Alcotest.int "no rows" 0 r.Exec.row_count;
  (* aggregates over empty input still produce the global row *)
  match (Ghost_db.query db "SELECT COUNT(*) FROM F").Exec.rows with
  | [ [| Value.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "COUNT over empty table"

let suite = [
  Alcotest.test_case "no WHERE clause" `Quick test_no_where_clause;
  Alcotest.test_case "full scan of the root" `Quick test_full_scan_of_root;
  Alcotest.test_case "key-only projection through joins" `Quick
    test_key_only_projection_through_join;
  Alcotest.test_case "duplicate projection" `Quick test_duplicate_projection;
  Alcotest.test_case "impossible predicate" `Quick test_impossible_predicate;
  Alcotest.test_case "always-true predicate" `Quick test_always_true_predicate;
  Alcotest.test_case "hidden + visible ranges" `Quick test_hidden_range_plus_visible_range;
  Alcotest.test_case "IN on hidden index" `Quick test_in_on_hidden_index;
  Alcotest.test_case "NE on hidden index" `Quick test_ne_on_hidden_index;
  Alcotest.test_case "predicate on key column" `Quick test_predicate_on_key_column;
  Alcotest.test_case "8KiB device runs the whole suite" `Slow
    test_tiny_ram_device_runs_everything;
  Alcotest.test_case "deep query, hop-only table" `Quick
    test_deep_query_without_intermediate_projection;
  Alcotest.test_case "plan description readable" `Quick test_plan_describe_readable;
  Alcotest.test_case "empty tables" `Quick test_empty_tables;
]

