(* Hand-picked schema shapes as regression anchors: a single isolated
   table, a deep 5-level chain, and a wide star. (The randomized suite
   explores the space; these pin the corners.) *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan

let check = Alcotest.check

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let check_all_plans db refdb sql =
  let q = Ghost_db.bind db sql in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  List.iter
    (fun (plan, _) ->
       let r = Ghost_db.run_plan db plan in
       if not (rows_equal r.Exec.rows expected) then
         Alcotest.failf "%s: plan [%s] wrong" sql plan.Plan.label)
    (Ghost_db.plans db sql);
  List.length expected

(* ---- single isolated table (the schema root is a leaf) ---- *)

let test_single_table_schema () =
  let schema =
    Schema.create
      [
        Schema.table ~name:"Solo" ~key:"SID"
          [
            Column.make "pub" Value.T_int;
            Column.make ~visibility:Column.Hidden "sec" (Value.T_char 8);
          ];
      ]
  in
  let rng = Rng.create 4 in
  let rows =
    [
      ( "Solo",
        List.init 60 (fun i ->
          [|
            Value.Int (i + 1);
            Value.Int (Rng.int rng 5);
            Value.Str (Rng.pick rng [| "a"; "b"; "c" |]);
          |]) );
    ]
  in
  let db = Ghost_db.of_schema schema rows in
  let refdb = Reference.db_of_rows schema rows in
  ignore (check_all_plans db refdb "SELECT Solo.SID FROM Solo WHERE Solo.sec = 'a'");
  ignore (check_all_plans db refdb "SELECT Solo.SID, Solo.sec FROM Solo WHERE Solo.pub = 3");
  ignore
    (check_all_plans db refdb
       "SELECT Solo.sec, COUNT(*) FROM Solo GROUP BY Solo.sec ORDER BY Solo.sec")

(* ---- deep 5-level chain: A -> B -> C -> D -> E ---- *)

let chain_schema () =
  let t name key cols = Schema.table ~name ~key cols in
  Schema.create
    [
      t "A" "AID"
        [ Column.make ~visibility:Column.Hidden "av" Value.T_int;
          Column.make ~visibility:Column.Hidden ~refs:"B" "b" Value.T_int ];
      t "B" "BID"
        [ Column.make "bv" Value.T_int;
          Column.make ~visibility:Column.Hidden ~refs:"C" "c" Value.T_int ];
      t "C" "CID"
        [ Column.make ~visibility:Column.Hidden "cv" (Value.T_char 8);
          Column.make ~refs:"D" "d" Value.T_int ];
      t "D" "DID"
        [ Column.make "dv" Value.T_int;
          Column.make ~visibility:Column.Hidden ~refs:"E" "e" Value.T_int ];
      t "E" "EID" [ Column.make ~visibility:Column.Hidden "ev" Value.T_int ];
    ]

let chain_rows () =
  let rng = Rng.create 9 in
  let sizes = [ ("A", 160); ("B", 70); ("C", 40); ("D", 15); ("E", 8) ] in
  let n name = List.assoc name sizes in
  [
    ( "A",
      List.init (n "A") (fun i ->
        [| Value.Int (i + 1); Value.Int (Rng.int rng 9);
           Value.Int (1 + Rng.int rng (n "B")) |]) );
    ( "B",
      List.init (n "B") (fun i ->
        [| Value.Int (i + 1); Value.Int (Rng.int rng 6);
           Value.Int (1 + Rng.int rng (n "C")) |]) );
    ( "C",
      List.init (n "C") (fun i ->
        [| Value.Int (i + 1); Value.Str (Rng.pick rng [| "x"; "y"; "z" |]);
           Value.Int (1 + Rng.int rng (n "D")) |]) );
    ( "D",
      List.init (n "D") (fun i ->
        [| Value.Int (i + 1); Value.Int (Rng.int rng 4);
           Value.Int (1 + Rng.int rng (n "E")) |]) );
    ("E", List.init (n "E") (fun i -> [| Value.Int (i + 1); Value.Int (Rng.int rng 3) |]));
  ]

let test_deep_chain () =
  let schema = chain_schema () in
  let rows = chain_rows () in
  let db = Ghost_db.of_schema schema rows in
  let refdb = Reference.db_of_rows schema rows in
  (* predicate on the deepest leaf, projected from the root: the
     climbing index must span 5 levels *)
  let n =
    check_all_plans db refdb
      "SELECT A.AID, E.ev FROM A, B, C, D, E WHERE E.ev = 1 AND A.b = B.BID AND \
       B.c = C.CID AND C.d = D.DID AND D.e = E.EID"
  in
  check Alcotest.bool "matches exist" true (n > 0);
  (* mixed visible/hidden along the chain *)
  ignore
    (check_all_plans db refdb
       "SELECT A.AID FROM A, B, C, D, E WHERE B.bv >= 2 AND C.cv = 'x' AND D.dv < 3 \
        AND E.ev <> 0 AND A.b = B.BID AND B.c = C.CID AND C.d = D.DID AND D.e = \
        E.EID");
  (* sub-subtree query rooted in the middle of the chain *)
  ignore
    (check_all_plans db refdb
       "SELECT C.CID, D.dv FROM C, D WHERE C.cv = 'y' AND D.dv = 1 AND C.d = D.DID")

(* ---- wide star: one fact, five dimensions ---- *)

let test_wide_star () =
  let dim i =
    Schema.table ~name:(Printf.sprintf "Dim%d" i) ~key:(Printf.sprintf "D%dID" i)
      [ Column.make ~visibility:(if i mod 2 = 0 then Column.Hidden else Column.Visible)
          "v" Value.T_int ]
  in
  let fact =
    Schema.table ~name:"Fact" ~key:"FID"
      (Column.make ~visibility:Column.Hidden "fv" Value.T_int
       :: List.init 5 (fun i ->
         Column.make ~visibility:Column.Hidden ~refs:(Printf.sprintf "Dim%d" (i + 1))
           (Printf.sprintf "fk%d" (i + 1)) Value.T_int))
  in
  let schema = Schema.create (fact :: List.init 5 (fun i -> dim (i + 1))) in
  let rng = Rng.create 21 in
  let dim_rows _ = List.init 12 (fun j -> [| Value.Int (j + 1); Value.Int (Rng.int rng 4) |]) in
  let rows =
    ( "Fact",
      List.init 300 (fun i ->
        Array.of_list
          (Value.Int (i + 1) :: Value.Int (Rng.int rng 7)
           :: List.init 5 (fun _ -> Value.Int (1 + Rng.int rng 12)))) )
    :: List.init 5 (fun i -> (Printf.sprintf "Dim%d" (i + 1), dim_rows i))
  in
  let db = Ghost_db.of_schema schema rows in
  let refdb = Reference.db_of_rows schema rows in
  ignore
    (check_all_plans db refdb
       "SELECT Fact.FID FROM Fact, Dim1, Dim2, Dim3 WHERE Dim1.v = 1 AND Dim2.v = 2 \
        AND Dim3.v >= 1 AND Fact.fk1 = Dim1.D1ID AND Fact.fk2 = Dim2.D2ID AND \
        Fact.fk3 = Dim3.D3ID");
  ignore
    (check_all_plans db refdb
       "SELECT Dim5.v, COUNT(*) FROM Fact, Dim5 WHERE Fact.fv BETWEEN 2 AND 5 AND \
        Fact.fk5 = Dim5.D5ID GROUP BY Dim5.v")

let suite = [
  Alcotest.test_case "single isolated table" `Quick test_single_table_schema;
  Alcotest.test_case "deep 5-level chain" `Quick test_deep_chain;
  Alcotest.test_case "wide star" `Quick test_wide_star;
]
