(* Baseline correctness + the paper's performance claim: both
   last-resort algorithms return the reference rows and lose to the
   GhostDB executor. *)

module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Baseline = Ghost_baseline.Baseline

let check = Alcotest.check

let instance =
  lazy
    (let rows = Medical.generate Medical.tiny in
     let db = Ghost_db.of_schema (Medical.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let run_baseline db algo sql =
  Baseline.run algo (Ghost_db.catalog db) (Ghost_db.public db) (Ghost_db.bind db sql)

let test_baselines_match_reference () =
  let db, refdb = Lazy.force instance in
  List.iter
    (fun (name, sql) ->
       let expected =
         Reference.run (Ghost_db.schema db) refdb (Ghost_db.bind db sql)
       in
       List.iter
         (fun algo ->
            let r = run_baseline db algo sql in
            if not (rows_equal r.Baseline.rows expected) then
              Alcotest.failf "%s via %s: %d rows, reference %d rows" name
                (Baseline.algorithm_name algo) r.Baseline.row_count
                (List.length expected);
            check Alcotest.int
              (name ^ " ram released (" ^ Baseline.algorithm_name algo ^ ")")
              0
              (Ram.in_use (Device.ram (Ghost_db.device db))))
         [ Baseline.Grace_hash; Baseline.Sort_merge ])
    Queries.all

let test_baselines_slower_than_ghostdb () =
  let db, _ = Lazy.force instance in
  let sql = Queries.demo_with ~date_selectivity:0.1 () in
  let ghost = Ghost_db.query db sql in
  let hash = run_baseline db Baseline.Grace_hash sql in
  let merge = run_baseline db Baseline.Sort_merge sql in
  check Alcotest.bool
    (Printf.sprintf "grace hash slower (ghost %.0f vs hash %.0f us)"
       ghost.Exec.elapsed_us hash.Baseline.elapsed_us)
    true
    (hash.Baseline.elapsed_us > ghost.Exec.elapsed_us);
  check Alcotest.bool
    (Printf.sprintf "sort merge slower (ghost %.0f vs merge %.0f us)"
       ghost.Exec.elapsed_us merge.Baseline.elapsed_us)
    true
    (merge.Baseline.elapsed_us > ghost.Exec.elapsed_us)

let test_baseline_privacy () =
  let db, _ = Lazy.force instance in
  Ghost_db.clear_trace db;
  ignore (run_baseline db Baseline.Grace_hash Queries.demo);
  ignore (run_baseline db Baseline.Sort_merge Queries.demo);
  let verdict = Ghost_db.audit db in
  check Alcotest.bool "baselines leak nothing either" true verdict.Ghostdb.Privacy.ok

let suite = [
  Alcotest.test_case "baselines match reference on all queries" `Slow
    test_baselines_match_reference;
  Alcotest.test_case "baselines slower than GhostDB" `Quick
    test_baselines_slower_than_ghostdb;
  Alcotest.test_case "baselines pass the privacy audit" `Quick test_baseline_privacy;
]
