(* The corporate/retail workload: a second tree shape through the whole
   engine. *)

module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Schema = Ghost_relation.Schema
module Retail = Ghost_workload.Retail
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan

let check = Alcotest.check

let instance =
  lazy
    (let rows = Retail.generate Retail.tiny in
     let db = Ghost_db.of_schema (Retail.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let test_schema_shape () =
  let s = Retail.schema () in
  check Alcotest.string "fact" "LineItem" (Schema.root s).Schema.name;
  check Alcotest.(list string) "chain"
    [ "Customer"; "Purchase"; "LineItem" ]
    (Schema.climb_path s "Customer");
  check Alcotest.int "product is flat" 1 (Schema.depth s "Product")

let test_all_queries_all_plans () =
  let db, refdb = Lazy.force instance in
  List.iter
    (fun (name, sql) ->
       let q = Ghost_db.bind db sql in
       let expected = Reference.run (Ghost_db.schema db) refdb q in
       let ordered = q.Ghost_sql.Bind.order_by <> [] in
       List.iter
         (fun (plan, _) ->
            let r = Ghost_db.run_plan db plan in
            let same =
              if ordered then r.Exec.rows = expected
              else rows_equal r.Exec.rows expected
            in
            if not same then
              Alcotest.failf "retail %s: plan [%s] wrong" name plan.Plan.label;
            check Alcotest.int "ram released" 0
              (Ram.in_use (Device.ram (Ghost_db.device db))))
         (Ghost_db.plans db sql))
    Retail.queries

let test_privacy () =
  let db, _ = Lazy.force instance in
  Ghost_db.clear_trace db;
  List.iter (fun (_, sql) -> ignore (Ghost_db.query db sql)) Retail.queries;
  let verdict = Ghost_db.audit db in
  check Alcotest.bool "no leak in the retail scenario" true verdict.Ghostdb.Privacy.ok

let test_non_vacuous () =
  let db, refdb = Lazy.force instance in
  List.iter
    (fun (name, sql) ->
       let expected =
         Reference.run (Ghost_db.schema db) refdb (Ghost_db.bind db sql)
       in
       check Alcotest.bool (name ^ " selects rows") true (expected <> []))
    Retail.queries

let suite = [
  Alcotest.test_case "schema shape" `Quick test_schema_shape;
  Alcotest.test_case "all queries x all plans" `Slow test_all_queries_all_plans;
  Alcotest.test_case "privacy" `Quick test_privacy;
  Alcotest.test_case "queries non-vacuous" `Quick test_non_vacuous;
]
