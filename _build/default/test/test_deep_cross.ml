(* Deep cross-filtering: borrowing a descendant table's climbing-index
   list at an intermediate level before the climb (Section 4's
   "selectivity of a selection on intermediate tables ... combined with
   the selectivity of selections on hidden attributes of descendant
   tables"). *)

module Value = Ghost_kernel.Value
module Medical = Ghost_workload.Medical
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Cost = Ghostdb.Cost

let check = Alcotest.check

(* Visible predicate on the intermediate Visit table + hidden predicate
   on its descendant Patient: the deep-cross plan intersects Patient's
   Visit-level index list with the shipped Visit ids before climbing to
   Prescription. *)
let sql =
  "SELECT Pre.PreID, Pat.Age FROM Prescription Pre, Visit Vis, Patient Pat WHERE \
   Vis.Date > '2005-01-01' AND Pat.BodyMassIndex >= 35.0 AND Pre.VisID = Vis.VisID \
   AND Vis.PatID = Pat.PatID"

let instance =
  lazy
    (let rows = Medical.generate Medical.small in
     let db = Ghost_db.of_schema (Medical.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let deep_plans db =
  List.filter
    (fun (plan, _) ->
       List.exists (fun g -> g.Plan.g_borrowed <> []) plan.Plan.groups)
    (Ghost_db.plans db sql)

let test_panel_contains_deep_plan () =
  let db, _ = Lazy.force instance in
  let deep = deep_plans db in
  check Alcotest.bool "at least one deep-cross plan" true (deep <> []);
  List.iter
    (fun (plan, _) ->
       List.iter
         (fun g ->
            List.iter
              (fun (d, p) ->
                 check Alcotest.string "borrowed from Patient" "Patient" d;
                 check Alcotest.string "borrowed predicate" "BodyMassIndex"
                   p.Ghost_relation.Predicate.column)
              g.Plan.g_borrowed)
         plan.Plan.groups)
    deep

let test_deep_plans_correct () =
  let db, refdb = Lazy.force instance in
  let expected = Reference.run (Ghost_db.schema db) refdb (Ghost_db.bind db sql) in
  check Alcotest.bool "query selects rows" true (expected <> []);
  List.iter
    (fun (plan, _) ->
       let r = Ghost_db.run_plan db plan in
       if Reference.sort_rows r.Exec.rows <> Reference.sort_rows expected then
         Alcotest.failf "deep plan [%s] wrong (%d vs %d rows)" plan.Plan.label
           r.Exec.row_count (List.length expected))
    (deep_plans db)

let test_deep_beats_plain_pre () =
  (* BMI >= 35 keeps ~1/3 of patients; the borrow must shrink the climb
     and beat the plain Pre plan. *)
  let db, _ = Lazy.force instance in
  let q = Ghost_db.bind db sql in
  let cat = Ghost_db.catalog db in
  let plain = Ghost_db.run_plan db (Planner.all_pre cat q) in
  let deep =
    match deep_plans db with
    | (plan, _) :: _ -> Ghost_db.run_plan db plan
    | [] -> Alcotest.fail "no deep plan"
  in
  check Alcotest.bool
    (Printf.sprintf "deep (%.0f us) < plain pre (%.0f us)" deep.Exec.elapsed_us
       plain.Exec.elapsed_us)
    true
    (deep.Exec.elapsed_us < plain.Exec.elapsed_us)

let test_labels_mention_borrow () =
  let db, _ = Lazy.force instance in
  match deep_plans db with
  | (plan, _) :: _ ->
    let contains sub s =
      let n = String.length sub in
      let rec loop i = i + n <= String.length s && (String.sub s i n = sub || loop (i + 1)) in
      loop 0
    in
    check Alcotest.bool "label shows the borrow" true
      (contains "+Patient.BodyMassIndex" plan.Plan.label);
    check Alcotest.bool "describe mentions it" true
      (contains "borrowed from descendant Patient" (Plan.describe plan))
  | [] -> Alcotest.fail "no deep plan"

let suite = [
  Alcotest.test_case "panel contains deep-cross plans" `Quick test_panel_contains_deep_plan;
  Alcotest.test_case "deep plans return the reference rows" `Quick test_deep_plans_correct;
  Alcotest.test_case "deep cross beats plain pre" `Quick test_deep_beats_plain_pre;
  Alcotest.test_case "labels and descriptions" `Quick test_labels_mention_borrow;
]
