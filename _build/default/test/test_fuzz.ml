(* Robustness: the SQL front end must never crash with anything but its
   own typed errors, whatever bytes arrive. *)

module Lexer = Ghost_sql.Lexer
module Parser = Ghost_sql.Parser
module Bind = Ghost_sql.Bind
module Medical = Ghost_workload.Medical

let schema = lazy (Medical.schema ())

let survives input =
  match Bind.bind (Lazy.force schema) input with
  | _ -> true
  | exception (Lexer.Lex_error _ | Parser.Parse_error _ | Bind.Bind_error _) -> true
  | exception _ -> false

let printable_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (0 -- 80))

let prop_garbage =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"arbitrary printable garbage" ~count:500
       (QCheck.make ~print:Fun.id printable_gen)
       survives)

let prop_any_bytes =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"arbitrary bytes" ~count:300 QCheck.string survives)

(* Mutate valid queries: truncate, duplicate tokens, splice. *)
let prop_mutated_valid =
  let base = Array.of_list (List.map snd Ghost_workload.Queries.all) in
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"mutations of valid queries" ~count:400
       QCheck.(triple (int_range 0 1000) small_nat small_nat)
       (fun (pick, cut, splice) ->
          let sql = base.(pick mod Array.length base) in
          let n = String.length sql in
          let truncated = String.sub sql 0 (min n (cut mod (n + 1))) in
          let spliced =
            let at = splice mod (String.length truncated + 1) in
            String.sub truncated 0 at ^ " AND ( % " ^ String.sub truncated at
              (String.length truncated - at)
          in
          survives truncated && survives spliced))

let suite = [ prop_garbage; prop_any_bytes; prop_mutated_valid ]
