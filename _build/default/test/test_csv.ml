(* CSV ingestion. *)

module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Column = Ghost_relation.Column
module Csv_load = Ghost_workload.Csv_load

let check = Alcotest.check

let schema () =
  Schema.create
    [
      Schema.table ~name:"T" ~key:"ID"
        [
          Column.make "n" Value.T_int;
          Column.make "f" Value.T_float;
          Column.make "d" Value.T_date;
          Column.make ~visibility:Column.Hidden "s" (Value.T_char 8);
        ];
    ]

let test_basic_parse () =
  let rows =
    Csv_load.parse_table (schema ()) ~table:"T"
      "ID,n,f,d,s\n1,10,2.5,2006-01-02,abc\n2,-3,0.0,1999-12-31,xy\n"
  in
  check Alcotest.int "two rows" 2 (List.length rows);
  match rows with
  | [ r1; _ ] ->
    check Alcotest.bool "key" true (r1.(0) = Value.Int 1);
    check Alcotest.bool "int" true (r1.(1) = Value.Int 10);
    check Alcotest.bool "float" true (r1.(2) = Value.Float 2.5);
    check Alcotest.bool "date" true
      (r1.(3) = Value.Date (Ghost_kernel.Date.of_string "2006-01-02"));
    check Alcotest.bool "str" true (r1.(4) = Value.Str "abc")
  | _ -> Alcotest.fail "row shape"

let test_header_any_order () =
  let rows =
    Csv_load.parse_table (schema ()) ~table:"T"
      "s,d,f,n,ID\nhello,2006-01-02,1.0,7,1\n"
  in
  match rows with
  | [ r ] ->
    check Alcotest.bool "reordered" true
      (r.(0) = Value.Int 1 && r.(1) = Value.Int 7 && r.(4) = Value.Str "hello")
  | _ -> Alcotest.fail "row shape"

let test_tab_separator () =
  let rows =
    Csv_load.parse_table ~separator:'\t' (schema ()) ~table:"T"
      "ID\tn\tf\td\ts\n1\t1\t1.0\t2006-01-02\ta,b c\n"
  in
  match rows with
  | [ r ] -> check Alcotest.bool "comma inside value" true (r.(4) = Value.Str "a,b c")
  | _ -> Alcotest.fail "row shape"

let expect_error ~line text =
  try
    ignore (Csv_load.parse_table (schema ()) ~table:"T" text);
    Alcotest.failf "expected Csv_error on %S" text
  with Csv_load.Csv_error { line = got; _ } ->
    check Alcotest.int ("line of " ^ text) line got

let test_errors () =
  expect_error ~line:2 "ID,n,f,d,s\n1,zz,1.0,2006-01-02,a\n";
  expect_error ~line:2 "ID,n,f,d,s\n1,1,1.0,not-a-date,a\n";
  expect_error ~line:3 "ID,n,f,d,s\n1,1,1.0,2006-01-02,a\n2,1,1.0,2006-01-02,toolongstring\n";
  expect_error ~line:1 "ID,n,f,d\n";
  expect_error ~line:1 "ID,n,f,d,s,extra\n";
  expect_error ~line:1 "ID,n,n,f,d,s\n";
  expect_error ~line:2 "ID,n,f,d,s\n1,2,3\n";
  expect_error ~line:0 ""

let test_loads_into_ghostdb () =
  let s = schema () in
  let rows =
    Csv_load.parse_table s ~table:"T"
      "ID,n,f,d,s\n1,10,1.0,2006-01-02,aa\n2,20,2.0,2006-01-03,bb\n3,10,3.0,2006-01-04,aa\n"
  in
  let db = Ghostdb.Ghost_db.of_schema s [ ("T", rows) ] in
  let r =
    Ghostdb.Ghost_db.query db "SELECT T.ID FROM T WHERE T.s = 'aa' AND T.n = 10"
  in
  check Alcotest.int "query over csv data" 2 r.Ghostdb.Exec.row_count

let suite = [
  Alcotest.test_case "basic parse" `Quick test_basic_parse;
  Alcotest.test_case "header in any order" `Quick test_header_any_order;
  Alcotest.test_case "tab separator" `Quick test_tab_separator;
  Alcotest.test_case "errors carry line numbers" `Quick test_errors;
  Alcotest.test_case "loads into ghostdb" `Quick test_loads_into_ghostdb;
]
