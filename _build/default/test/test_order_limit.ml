(* ORDER BY / LIMIT: parsing, binding, device execution, agreement with
   the reference on deterministic orderings. *)

module Value = Ghost_kernel.Value
module Medical = Ghost_workload.Medical
module Reference = Ghost_workload.Reference
module Parser = Ghost_sql.Parser
module Ast = Ghost_sql.Ast
module Bind = Ghost_sql.Bind
module Postproc = Ghost_sql.Postproc
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan

let check = Alcotest.check

let instance =
  lazy
    (let rows = Medical.generate Medical.tiny in
     let db = Ghost_db.of_schema (Medical.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let test_parse () =
  let s =
    Parser.parse_select
      "SELECT Name, Zip FROM Doctor ORDER BY Zip DESC, Name ASC LIMIT 5"
  in
  check Alcotest.int "two order keys" 2 (List.length s.Ast.order_by);
  (match s.Ast.order_by with
   | [ (_, true); (_, false) ] -> ()
   | _ -> Alcotest.fail "directions wrong");
  check Alcotest.(option int) "limit" (Some 5) s.Ast.limit;
  (* limit without order is legal *)
  let s2 = Parser.parse_select "SELECT Name FROM Doctor LIMIT 3" in
  check Alcotest.(option int) "bare limit" (Some 3) s2.Ast.limit

let test_parse_errors () =
  List.iter
    (fun sql ->
       try
         ignore (Parser.parse_select sql);
         Alcotest.fail ("expected Parse_error for " ^ sql)
       with Parser.Parse_error _ -> ())
    [
      "SELECT Name FROM Doctor ORDER Name";
      "SELECT Name FROM Doctor LIMIT -1";
      "SELECT Name FROM Doctor LIMIT x";
    ]

let test_bind_validation () =
  let schema = Medical.schema () in
  (try
     ignore (Bind.bind schema "SELECT Name FROM Doctor ORDER BY Zip");
     Alcotest.fail "expected Bind_error (not selected)"
   with Bind.Bind_error _ -> ());
  let q = Bind.bind schema "SELECT Name, Zip FROM Doctor ORDER BY Zip DESC LIMIT 2" in
  check Alcotest.bool "order resolved to index 1 desc" true
    (q.Bind.order_by = [ (1, true) ]);
  check Alcotest.(option int) "limit bound" (Some 2) q.Bind.limit;
  (* group-by queries may order by a group column *)
  let q2 =
    Bind.bind schema
      "SELECT Country, COUNT(*) FROM Patient GROUP BY Country ORDER BY Country"
  in
  check Alcotest.bool "group order" true (q2.Bind.order_by = [ (0, false) ])

let test_postproc_semantics () =
  let rows = [ [| Value.Int 2 |]; [| Value.Int 1 |]; [| Value.Int 3 |] ] in
  check Alcotest.bool "asc" true
    (Postproc.apply ~order_by:[ (0, false) ] ~limit:None rows
     = [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Int 3 |] ]);
  check Alcotest.bool "desc + limit" true
    (Postproc.apply ~order_by:[ (0, true) ] ~limit:(Some 2) rows
     = [ [| Value.Int 3 |]; [| Value.Int 2 |] ]);
  check Alcotest.bool "limit 0" true
    (Postproc.apply ~order_by:[] ~limit:(Some 0) rows = []);
  check Alcotest.bool "limit beyond" true
    (Postproc.apply ~order_by:[] ~limit:(Some 99) rows = rows)

let test_engine_ordered_output () =
  let db, refdb = Lazy.force instance in
  (* order by the unique key: fully deterministic, so compare exact
     sequences across every plan *)
  let sql =
    "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre, Visit Vis WHERE \
     Vis.Purpose = 'Checkup' AND Pre.VisID = Vis.VisID ORDER BY Pre.PreID DESC \
     LIMIT 7"
  in
  let q = Ghost_db.bind db sql in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  check Alcotest.bool "limit respected" true (List.length expected <= 7);
  List.iter
    (fun (plan, _) ->
       let r = Ghost_db.run_plan db plan in
       if r.Exec.rows <> expected then
         Alcotest.failf "plan [%s]: ordered output differs" plan.Plan.label)
    (Ghost_db.plans db sql)

let test_order_by_aggregate_group () =
  let db, refdb = Lazy.force instance in
  let sql =
    "SELECT Pat.Country, COUNT(*) FROM Patient Pat GROUP BY Pat.Country ORDER BY \
     Pat.Country"
  in
  let q = Ghost_db.bind db sql in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  let r = Ghost_db.query db sql in
  check Alcotest.bool "grouped + ordered" true (r.Exec.rows = expected);
  (* countries must come out sorted *)
  let countries =
    List.map (fun row -> match row.(0) with Value.Str s -> s | _ -> "?") r.Exec.rows
  in
  check Alcotest.bool "sorted" true (countries = List.sort String.compare countries)

let test_top_k_shape () =
  let db, _ = Lazy.force instance in
  let r =
    Ghost_db.query db
      "SELECT Pre.PreID, Pre.Quantity FROM Prescription Pre ORDER BY Pre.Quantity \
       DESC, Pre.PreID LIMIT 5"
  in
  check Alcotest.int "five rows" 5 r.Exec.row_count;
  let quantities =
    List.map (fun row -> match row.(1) with Value.Int q -> q | _ -> -1) r.Exec.rows
  in
  check Alcotest.bool "descending" true
    (quantities = List.sort (fun a b -> Int.compare b a) quantities)

let suite = [
  Alcotest.test_case "parse order/limit" `Quick test_parse;
  Alcotest.test_case "parse errors" `Quick test_parse_errors;
  Alcotest.test_case "bind validation" `Quick test_bind_validation;
  Alcotest.test_case "postproc semantics" `Quick test_postproc_semantics;
  Alcotest.test_case "engine ordered output (all plans)" `Quick test_engine_ordered_output;
  Alcotest.test_case "order by aggregate group" `Quick test_order_by_aggregate_group;
  Alcotest.test_case "top-k shape" `Quick test_top_k_shape;
]
