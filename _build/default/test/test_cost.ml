(* Cost model and planner properties: the estimates don't need to be
   exact, but they must be sane (finite, monotone in the obvious knobs)
   and must rank the strategy extremes correctly. *)

module Date = Ghost_kernel.Date
module Device = Ghost_device.Device
module Flash = Ghost_flash.Flash
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Col_stats = Ghostdb.Col_stats
module Value = Ghost_kernel.Value
module Predicate = Ghost_relation.Predicate
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Cost = Ghostdb.Cost
module Exec = Ghostdb.Exec

let check = Alcotest.check

let db = lazy (Ghost_db.of_schema (Medical.schema ()) (Medical.generate Medical.small))

let sweep_sql sel =
  Printf.sprintf
    "SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Vis.Date > '%s' AND \
     Vis.Purpose = 'Checkup' AND Vis.VisID = Pre.VisID"
    (Date.to_string (Medical.date_cutoff_for_selectivity sel))

let est_of db strategy sel =
  let cat = Ghost_db.catalog db in
  let q = Ghost_db.bind db (sweep_sql sel) in
  (Cost.estimate cat (Planner.uniform cat q strategy)).Cost.est_time_us

let test_pre_cost_monotone_in_selectivity () =
  let db = Lazy.force db in
  let costs = List.map (est_of db Plan.V_pre) [ 0.01; 0.05; 0.2; 0.5 ] in
  let rec increasing = function
    | a :: (b :: _ as rest) -> a <= b && increasing rest
    | _ -> true
  in
  check Alcotest.bool "pre cost grows with shipped ids" true (increasing costs)

let test_extremes_ranked_correctly () =
  let db = Lazy.force db in
  (* very selective visible predicate: Pre must beat Post *)
  check Alcotest.bool "pre wins at 0.1% selectivity" true
    (est_of db Plan.V_pre 0.001 < est_of db Plan.V_post 0.001);
  (* unselective: Post must beat Pre *)
  check Alcotest.bool "post wins at 50% selectivity" true
    (est_of db Plan.V_post 0.5 < est_of db Plan.V_pre 0.5)

let test_optimizer_pick_never_terrible () =
  (* The pick must be within 3x of the measured-fastest panel plan. *)
  let db = Lazy.force db in
  List.iter
    (fun sel ->
       let sql = sweep_sql sel in
       let panel = Ghost_db.plans db sql in
       let timed =
         List.map (fun (p, _) -> (Ghost_db.run_plan db p).Exec.elapsed_us) panel
       in
       let best = List.fold_left Float.min infinity timed in
       let picked = List.hd timed in
       if picked > 3. *. best then
         Alcotest.failf "sel %.3f: picked %.0f us, best %.0f us" sel picked best)
    [ 0.005; 0.05; 0.3 ]

let test_estimate_scales_with_flash_cost () =
  let rows = Medical.generate Medical.tiny in
  let time_at ratio =
    let config =
      { Device.default_config with Device.flash_cost = Flash.cost_with_write_ratio ratio }
    in
    let db = Ghost_db.of_schema ~device_config:config (Medical.schema ()) rows in
    let cat = Ghost_db.catalog db in
    let q = Ghost_db.bind db Queries.demo in
    (Cost.estimate cat (Planner.all_pre cat q)).Cost.est_time_us
  in
  (* reads dominate the plan; estimates must stay finite and positive
     under every cost model *)
  List.iter
    (fun r -> check Alcotest.bool "finite positive" true (time_at r > 0.))
    [ 1.; 5.; 10. ]

let test_estimate_breakdown_sums () =
  let db = Lazy.force db in
  let cat = Ghost_db.catalog db in
  let q = Ghost_db.bind db Queries.demo in
  List.iter
    (fun (plan, est) ->
       let parts = List.fold_left (fun acc (_, v) -> acc +. v) 0. est.Cost.breakdown in
       if Float.abs (parts -. est.Cost.est_time_us) > 1e-6 then
         Alcotest.failf "breakdown of [%s] sums to %.1f, total %.1f" plan.Plan.label
           parts est.Cost.est_time_us)
    (Planner.with_estimates cat q)

(* ---- Col_stats ---- *)

let test_col_stats_exact_mode () =
  let values = Array.init 100 (fun i -> Value.Int (i mod 4)) in
  let s = Col_stats.of_values values in
  check Alcotest.int "distinct" 4 (Col_stats.distinct s);
  check (Alcotest.float 1e-9) "eq" 0.25
    (Col_stats.selectivity s (Predicate.Eq (Value.Int 2)));
  check (Alcotest.float 1e-9) "ne" 0.75
    (Col_stats.selectivity s (Predicate.Ne (Value.Int 2)));
  check (Alcotest.float 1e-9) "absent value" 0.
    (Col_stats.selectivity s (Predicate.Eq (Value.Int 99)));
  check Alcotest.int "estimate rows" 25
    (Col_stats.estimate_rows s (Predicate.Eq (Value.Int 0)))

let test_col_stats_histogram_mode () =
  let values = Array.init 10_000 (fun i -> Value.Int i) in
  let s = Col_stats.of_values values in
  check Alcotest.int "distinct" 10_000 (Col_stats.distinct s);
  let sel = Col_stats.selectivity s (Predicate.Le (Value.Int 4999)) in
  check Alcotest.bool (Printf.sprintf "le median ~ 0.5 (got %.3f)" sel) true
    (Float.abs (sel -. 0.5) < 0.05);
  let between =
    Col_stats.selectivity s (Predicate.Between (Value.Int 1000, Value.Int 2000))
  in
  check Alcotest.bool (Printf.sprintf "between ~ 0.1 (got %.3f)" between) true
    (Float.abs (between -. 0.1) < 0.05)

let test_col_stats_empty () =
  let s = Col_stats.of_values [||] in
  check Alcotest.int "count" 0 (Col_stats.count s);
  check (Alcotest.float 1e-9) "selectivity" 0.
    (Col_stats.selectivity s (Predicate.Eq (Value.Int 1)))

let prop_selectivity_in_unit_interval =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"selectivity always in [0,1]" ~count:200
       QCheck.(pair (list int) (pair int int))
       (fun (values, (a, b)) ->
          let s = Col_stats.of_values (Array.of_list (List.map (fun v -> Value.Int v) values)) in
          List.for_all
            (fun cmp ->
               let x = Col_stats.selectivity s cmp in
               x >= 0. && x <= 1.)
            [
              Predicate.Eq (Value.Int a);
              Predicate.Ne (Value.Int a);
              Predicate.Lt (Value.Int a);
              Predicate.Ge (Value.Int a);
              Predicate.Between (Value.Int (min a b), Value.Int (max a b));
              Predicate.In [ Value.Int a; Value.Int b ];
            ]))

let suite = [
  Alcotest.test_case "pre cost monotone in selectivity" `Quick
    test_pre_cost_monotone_in_selectivity;
  Alcotest.test_case "extremes ranked correctly" `Quick test_extremes_ranked_correctly;
  Alcotest.test_case "optimizer never terrible" `Slow test_optimizer_pick_never_terrible;
  Alcotest.test_case "estimates survive flash-cost changes" `Quick
    test_estimate_scales_with_flash_cost;
  Alcotest.test_case "breakdown sums to total" `Quick test_estimate_breakdown_sums;
  Alcotest.test_case "col stats exact mode" `Quick test_col_stats_exact_mode;
  Alcotest.test_case "col stats histogram mode" `Quick test_col_stats_histogram_mode;
  Alcotest.test_case "col stats empty" `Quick test_col_stats_empty;
  prop_selectivity_in_unit_interval;
]
