(* Report formatting and experiment harness smoke tests. *)

module Report = Ghost_bench.Report
module Experiments = Ghost_bench.Experiments
module Medical = Ghost_workload.Medical

let check = Alcotest.check

let test_report_rendering () =
  let r =
    Report.make ~id:"X1" ~title:"demo" ~header:[ "a"; "bb" ]
      ~notes:[ "a note" ]
      [ [ "1"; "2" ]; [ "10"; "20" ] ]
  in
  let text = Report.to_string r in
  let contains sub =
    let n = String.length sub in
    let rec loop i = i + n <= String.length text && (String.sub text i n = sub || loop (i + 1)) in
    loop 0
  in
  check Alcotest.bool "title" true (contains "== X1: demo ==");
  check Alcotest.bool "note" true (contains "note: a note");
  check Alcotest.bool "cells" true (contains "10" && contains "20")

let test_unit_rendering () =
  check Alcotest.string "us" "123 us" (Report.us 123.);
  check Alcotest.string "ms" "12.3 ms" (Report.us 12_300.);
  check Alcotest.string "s" "2.50 s" (Report.us 2_500_000.);
  check Alcotest.string "b" "123 B" (Report.bytes 123);
  check Alcotest.string "kb" "12.0 KB" (Report.bytes (12 * 1024));
  check Alcotest.string "mb" "3.0 MB" (Report.bytes (3 * 1024 * 1024));
  check Alcotest.string "factor" "x2.5" (Report.factor 2.5)

(* Each experiment must produce a well-formed, non-empty table at tiny
   scale (the shapes themselves are asserted by the sweep tests; here
   we guard the harness plumbing). *)
let test_experiments_run_at_tiny_scale () =
  let scale = Medical.tiny in
  let reports = [
    Experiments.fig6_plans ~scale ();
    Experiments.operator_stats ~scale ();
    Experiments.privacy_trace ~scale ();
    Experiments.baseline_compare ~scale ();
    Experiments.storage_overhead ~scales:[ scale ] ();
    Experiments.insert_sweep ~scale ();
    Experiments.ablation_exact_post ~scale ();
    Experiments.ablation_bloom_fpr ~scale ();
    Experiments.ablation_hidden_fk_indexes ~scale ();
  ] in
  List.iter
    (fun (r : Report.t) ->
       check Alcotest.bool (r.Report.id ^ " has rows") true (r.Report.rows <> []);
       let w = List.length r.Report.header in
       List.iter
         (fun row ->
            check Alcotest.int (r.Report.id ^ " row width") w (List.length row))
         r.Report.rows)
    reports

let suite = [
  Alcotest.test_case "report rendering" `Quick test_report_rendering;
  Alcotest.test_case "unit rendering" `Quick test_unit_rendering;
  Alcotest.test_case "experiments run at tiny scale" `Slow
    test_experiments_run_at_tiny_scale;
]
