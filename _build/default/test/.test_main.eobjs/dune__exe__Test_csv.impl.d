test/test_csv.ml: Alcotest Array Ghost_kernel Ghost_relation Ghost_workload Ghostdb List
