test/test_kernel.ml: Alcotest Array Buffer Bytes Float Ghost_kernel Int List QCheck QCheck_alcotest
