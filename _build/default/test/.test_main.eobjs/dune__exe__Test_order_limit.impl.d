test/test_order_limit.ml: Alcotest Array Ghost_kernel Ghost_sql Ghost_workload Ghostdb Int Lazy List String
