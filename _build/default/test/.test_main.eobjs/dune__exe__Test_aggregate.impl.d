test/test_aggregate.ml: Alcotest Ghost_kernel Ghost_relation Ghost_sql Ghost_workload Ghostdb Lazy List
