test/test_edge.ml: Alcotest Ghost_device Ghost_kernel Ghost_relation Ghost_workload Ghostdb Lazy List String
