test/test_random_schema.ml: Array Float Ghost_device Ghost_kernel Ghost_relation Ghost_workload Ghostdb List Printf QCheck QCheck_alcotest String
