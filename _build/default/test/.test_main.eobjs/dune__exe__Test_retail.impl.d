test/test_retail.ml: Alcotest Ghost_device Ghost_relation Ghost_sql Ghost_workload Ghostdb Lazy List
