test/test_insert.ml: Alcotest Ghost_baseline Ghost_device Ghost_flash Ghost_kernel Ghost_workload Ghostdb List
