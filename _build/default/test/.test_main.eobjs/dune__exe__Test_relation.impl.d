test/test_relation.ml: Alcotest Ghost_kernel Ghost_relation
