test/test_sql.ml: Alcotest Ghost_kernel Ghost_relation Ghost_sql Ghost_workload List
