test/test_shapes.ml: Alcotest Array Ghost_kernel Ghost_relation Ghost_workload Ghostdb List Printf
