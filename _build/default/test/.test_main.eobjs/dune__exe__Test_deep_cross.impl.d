test/test_deep_cross.ml: Alcotest Ghost_kernel Ghost_relation Ghost_workload Ghostdb Lazy List Printf String
