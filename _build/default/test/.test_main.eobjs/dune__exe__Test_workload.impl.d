test/test_workload.ml: Alcotest Array Float Ghost_kernel Ghost_relation Ghost_sql Ghost_workload Lazy List
