test/test_flash.ml: Alcotest Bytes Float Ghost_flash List QCheck QCheck_alcotest String
