test/test_bloom.ml: Alcotest Array Float Ghost_bloom Ghost_kernel List Printf QCheck QCheck_alcotest
