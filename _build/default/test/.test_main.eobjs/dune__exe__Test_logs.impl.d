test/test_logs.ml: Alcotest Array Ghost_flash Ghost_kernel Ghostdb List Printf
