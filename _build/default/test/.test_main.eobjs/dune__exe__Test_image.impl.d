test/test_image.ml: Alcotest Filename Ghost_kernel Ghost_workload Ghostdb In_channel List Out_channel String Sys
