test/test_public.ml: Alcotest Array Ghost_device Ghost_kernel Ghost_public Ghost_relation List
