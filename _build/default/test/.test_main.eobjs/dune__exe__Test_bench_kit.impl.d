test/test_bench_kit.ml: Alcotest Ghost_bench Ghost_workload List String
