test/test_store.ml: Alcotest Array Bytes Char Ghost_device Ghost_flash Ghost_kernel Ghost_relation Ghost_store Int List Option QCheck QCheck_alcotest String
