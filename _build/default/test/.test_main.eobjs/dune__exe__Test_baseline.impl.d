test/test_baseline.ml: Alcotest Ghost_baseline Ghost_device Ghost_workload Ghostdb Lazy List Printf
