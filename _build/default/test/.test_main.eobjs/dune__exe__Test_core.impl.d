test/test_core.ml: Alcotest Array Float Ghost_device Ghost_kernel Ghost_public Ghost_relation Ghost_workload Ghostdb Lazy List Printf QCheck QCheck_alcotest String
