test/test_cost.ml: Alcotest Array Float Ghost_device Ghost_flash Ghost_kernel Ghost_relation Ghost_workload Ghostdb Lazy List Printf QCheck QCheck_alcotest
