test/test_device.ml: Alcotest Bytes Ghost_device Ghost_flash List
