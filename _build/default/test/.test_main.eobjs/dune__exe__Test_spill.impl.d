test/test_spill.ml: Alcotest Ghost_device Ghost_flash Ghost_workload Ghostdb List Printf
