test/test_delete_reorg.ml: Alcotest Array Ghost_device Ghost_kernel Ghost_workload Ghostdb List Printf
