test/test_fuzz.ml: Array Char Fun Ghost_sql Ghost_workload Lazy List QCheck QCheck_alcotest String
