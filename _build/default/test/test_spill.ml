(* RAM-pressure paths of the executor: the projection join must switch
   from the RAM hash to the external sort-merge on scratch, and the
   climb must fall back to hierarchical merging, without changing the
   answer. *)

module Device = Ghost_device.Device
module Flash = Ghost_flash.Flash
module Medical = Ghost_workload.Medical
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner

let check = Alcotest.check

(* An unselective visible predicate on Visit whose (id, date) stream is
   far larger than half a tiny arena: the Project+Join must spill. *)
let sql =
  "SELECT Pre.PreID, Vis.Date FROM Prescription Pre, Visit Vis WHERE Vis.Date > \
   '2004-02-01' AND Pre.VisID = Vis.VisID"

let with_budget budget =
  let rows = Medical.generate Medical.small in
  let config = { Device.default_config with Device.ram_budget = budget } in
  let db = Ghost_db.of_schema ~device_config:config (Medical.schema ()) rows in
  let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
  (db, refdb)

let op_named r label =
  List.find_opt (fun o -> o.Exec.op_label = label) r.Exec.ops

let run_post db =
  let q = Ghost_db.bind db sql in
  Ghost_db.run_plan db (Planner.all_post (Ghost_db.catalog db) q)

let test_join_spills_under_pressure () =
  let db, refdb = with_budget (12 * 1024) in
  let r = run_post db in
  let expected = Reference.run (Ghost_db.schema db) refdb (Ghost_db.bind db sql) in
  check Alcotest.bool "answer exact despite spill" true
    (Reference.sort_rows r.Exec.rows = Reference.sort_rows expected);
  match op_named r "Project+Join(Visit.Date)" with
  | None -> Alcotest.fail "join operator missing"
  | Some o ->
    check Alcotest.bool
      (Printf.sprintf "join spilled to scratch (%d programs)"
         o.Exec.usage.Device.flash_page_programs)
      true
      (o.Exec.usage.Device.flash_page_programs > 0)

let test_join_stays_in_ram_with_room () =
  let db, _ = with_budget (512 * 1024) in
  let r = run_post db in
  match op_named r "Project+Join(Visit.Date)" with
  | None -> Alcotest.fail "join operator missing"
  | Some o ->
    check Alcotest.int "no scratch traffic with a big arena" 0
      o.Exec.usage.Device.flash_page_programs

let test_scratch_reclaimed () =
  let db, _ = with_budget (12 * 1024) in
  let r = run_post db in
  check Alcotest.bool "reclaim op present" true
    (op_named r "ScratchReclaim" <> None);
  let scratch = Device.scratch (Ghost_db.device db) in
  check Alcotest.int "scratch empty after the query" 0 (Flash.live_bytes scratch)

let test_spill_slower_than_ram () =
  let small_ram, _ = with_budget (12 * 1024) in
  let big_ram, _ = with_budget (512 * 1024) in
  let spilled = (run_post small_ram).Exec.elapsed_us in
  let resident = (run_post big_ram).Exec.elapsed_us in
  check Alcotest.bool
    (Printf.sprintf "spill costs time (%.0f vs %.0f us)" spilled resident)
    true (spilled > resident)

let suite = [
  Alcotest.test_case "projection join spills under pressure" `Quick
    test_join_spills_under_pressure;
  Alcotest.test_case "no spill with a large arena" `Quick test_join_stays_in_ram_with_room;
  Alcotest.test_case "scratch reclaimed after the query" `Quick test_scratch_reclaimed;
  Alcotest.test_case "spilling costs simulated time" `Quick test_spill_slower_than_ram;
]
