(* End-to-end tests of the GhostDB core: loader, planner, executor,
   privacy — every candidate plan must return exactly the reference
   evaluator's rows. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Predicate = Ghost_relation.Predicate
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Catalog = Ghostdb.Catalog
module Planner = Ghostdb.Planner
module Plan = Ghostdb.Plan
module Exec = Ghostdb.Exec
module Cost = Ghostdb.Cost
module Privacy = Ghostdb.Privacy
module Col_stats = Ghostdb.Col_stats

let check = Alcotest.check

(* One shared tiny instance (loading is the expensive part). *)
let instance =
  lazy
    (let rows = Medical.generate Medical.tiny in
     let db = Ghost_db.of_schema (Medical.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let rows_equal got expected =
  Reference.sort_rows got = Reference.sort_rows expected

let reference_rows db refdb sql =
  Reference.run (Ghost_db.schema db) refdb (Ghost_db.bind db sql)

let check_query_all_plans name sql =
  let db, refdb = Lazy.force instance in
  let expected = reference_rows db refdb sql in
  let panel = Ghost_db.plans db sql in
  check Alcotest.bool (name ^ ": panel non-empty") true (panel <> []);
  List.iter
    (fun (plan, _est) ->
       let result = Ghost_db.run_plan db plan in
       if not (rows_equal result.Exec.rows expected) then
         Alcotest.failf "%s: plan [%s] returned %d rows, reference %d rows" name
           plan.Plan.label (List.length result.Exec.rows) (List.length expected);
       check Alcotest.int
         (name ^ " ram released after [" ^ plan.Plan.label ^ "]")
         0
         (Ram.in_use (Device.ram (Ghost_db.device db))))
    panel

let test_all_queries_all_plans () =
  List.iter (fun (name, sql) -> check_query_all_plans name sql) Queries.all

let test_optimizer_pick_runs () =
  let db, refdb = Lazy.force instance in
  let expected = reference_rows db refdb Queries.demo in
  let result = Ghost_db.query db Queries.demo in
  check Alcotest.bool "optimizer plan correct" true (rows_equal result.Exec.rows expected);
  check Alcotest.bool "has operators" true (List.length result.Exec.ops >= 3);
  check Alcotest.bool "positive simulated time" true (result.Exec.elapsed_us > 0.)

let test_nonempty_results () =
  (* Guard against vacuous comparisons: the demo query must actually
     select something at tiny scale. *)
  let db, refdb = Lazy.force instance in
  let sql =
    Queries.demo_with ~date_selectivity:0.8 ~purpose:"Checkup" ~med_type:"Analgesic" ()
  in
  let expected = reference_rows db refdb sql in
  check Alcotest.bool "demo-shaped query selects rows" true (List.length expected > 0);
  let result = Ghost_db.query db sql in
  check Alcotest.bool "and the engine returns them" true
    (rows_equal result.Exec.rows expected)

let test_canonical_plans_differ () =
  let db, _ = Lazy.force instance in
  let q = Ghost_db.bind db Queries.demo in
  let cat = Ghost_db.catalog db in
  let p1 = Planner.all_pre cat q in
  let p2 = Planner.all_post cat q in
  check Alcotest.bool "labels differ" true (p1.Plan.label <> p2.Plan.label);
  let r1 = Ghost_db.run_plan db p1 in
  let r2 = Ghost_db.run_plan db p2 in
  check Alcotest.bool "same answer" true
    (rows_equal r1.Exec.rows r2.Exec.rows);
  (* all_post must have built at least one Bloom filter *)
  check Alcotest.bool "post plan uses bloom" true
    (List.exists
       (fun o -> String.length o.Exec.op_label >= 5 && String.sub o.Exec.op_label 0 5 = "Bloom")
       r2.Exec.ops)

let test_privacy_audit () =
  let db, _ = Lazy.force instance in
  Ghost_db.clear_trace db;
  List.iter (fun (_, sql) -> ignore (Ghost_db.query db sql)) Queries.all;
  let verdict = Ghost_db.audit db in
  if not verdict.Privacy.ok then
    Alcotest.failf "privacy audit failed: %s" (String.concat "; " verdict.Privacy.violations);
  check Alcotest.int "no outbound payload" 0 verdict.Privacy.outbound_payload_bytes;
  check Alcotest.bool "visible data entered the device" true (verdict.Privacy.inbound_bytes > 0)

let test_spy_sees_only_public () =
  let db, _ = Lazy.force instance in
  Ghost_db.clear_trace db;
  ignore (Ghost_db.query db Queries.demo);
  let report = Ghost_db.spy_report db in
  check Alcotest.int "device leaked nothing" 0
    report.Ghost_public.Spy.device_outbound_payload_bytes;
  check Alcotest.bool "spy saw the query" true
    (report.Ghost_public.Spy.queries_observed <> [])

let test_hidden_predicates_never_reach_public () =
  (* Defense in depth: asking the public store for a hidden column
     raises. *)
  let db, _ = Lazy.force instance in
  let public = Ghost_db.public db in
  try
    ignore
      (Ghost_public.Public_store.select_ids public ~trace:(Ghost_db.trace db)
         (Predicate.make ~table:"Visit" ~column:"Purpose"
            (Predicate.Eq (Value.Str "Sclerosis"))));
    Alcotest.fail "expected Hidden_column"
  with Ghost_public.Public_store.Hidden_column { table = "Visit"; column = "Purpose" } -> ()

let test_storage_report () =
  let db, _ = Lazy.force instance in
  let s = Ghost_db.storage db in
  check Alcotest.bool "base data stored" true (s.Catalog.base_bytes > 0);
  check Alcotest.bool "skts stored" true (s.Catalog.skt_bytes > 0);
  check Alcotest.bool "indexes stored" true (s.Catalog.attr_index_bytes > 0);
  check Alcotest.bool "key indexes stored" true (s.Catalog.key_index_bytes > 0)

let test_op_stats_consistency () =
  let db, _ = Lazy.force instance in
  let result = Ghost_db.query db Queries.demo in
  List.iter
    (fun o ->
       check Alcotest.bool (o.Exec.op_label ^ " time >= 0") true
         (o.Exec.usage.Device.total_us >= 0.);
       check Alcotest.bool (o.Exec.op_label ^ " ram >= 0") true (o.Exec.ram_peak >= 0))
    result.Exec.ops;
  let sum_ops =
    List.fold_left (fun acc o -> acc +. o.Exec.usage.Device.total_us) 0. result.Exec.ops
  in
  check Alcotest.bool "ops time <= total" true (sum_ops <= result.Exec.elapsed_us +. 1e-6)

let test_exact_post_blocks_bloom_fps () =
  (* With a deliberately terrible Bloom filter, exact verification must
     still give the correct answer. *)
  let db, refdb = Lazy.force instance in
  let sql = Queries.demo_with ~date_selectivity:0.4 () in
  let expected = reference_rows db refdb sql in
  let cat = Ghost_db.catalog db in
  let plan = Planner.all_post cat (Ghost_db.bind db sql) in
  let result = Ghost_db.run_plan db ~bloom_fpr:0.9 plan in
  check Alcotest.bool "exact despite terrible bloom" true
    (rows_equal result.Exec.rows expected)

let test_estimates_are_finite () =
  let db, _ = Lazy.force instance in
  List.iter
    (fun (_, sql) ->
       List.iter
         (fun (_, est) ->
            check Alcotest.bool "finite" true (Float.is_finite est.Cost.est_time_us);
            check Alcotest.bool "non-negative" true (est.Cost.est_time_us >= 0.))
         (Ghost_db.plans db sql))
    Queries.all

(* ---- randomized plan/query property ---- *)

let random_query rng =
  let purpose = Medical.purposes.(Rng.int rng (Array.length Medical.purposes)) in
  let med_type = Medical.medicine_types.(Rng.int rng (Array.length Medical.medicine_types)) in
  let sel = [| 0.01; 0.1; 0.3; 0.7 |].(Rng.int rng 4) in
  match Rng.int rng 4 with
  | 0 -> Queries.demo_with ~date_selectivity:sel ~purpose ~med_type ()
  | 1 ->
    Printf.sprintf
      "SELECT Pre.PreID, Pat.Age FROM Prescription Pre, Visit Vis, Patient Pat WHERE \
       Pat.Age > %d AND Vis.Purpose = '%s' AND Pre.VisID = Vis.VisID AND Vis.PatID = \
       Pat.PatID"
      (Rng.int_in rng 20 80) purpose
  | 2 ->
    Printf.sprintf
      "SELECT Vis.VisID, Vis.Date FROM Visit Vis WHERE Vis.Purpose = '%s' AND \
       Vis.Date > '%s'"
      purpose
      (Ghost_kernel.Date.to_string (Medical.date_cutoff_for_selectivity sel))
  | _ ->
    Printf.sprintf
      "SELECT Med.Name, Pre.Quantity FROM Medicine Med, Prescription Pre WHERE \
       Med.Type = '%s' AND Pre.Quantity BETWEEN %d AND 10 AND Med.MedID = Pre.MedID"
      med_type (Rng.int_in rng 1 9)

let prop_random_plans_match_reference =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~name:"random query: every plan = reference" ~count:25
       QCheck.(int_range 0 10_000)
       (fun seed ->
          let db, refdb = Lazy.force instance in
          let rng = Rng.create seed in
          let sql = random_query rng in
          let expected = reference_rows db refdb sql in
          let panel = Ghost_db.plans db sql in
          (* run up to 6 random plans from the panel *)
          let picked =
            List.filteri (fun i _ -> i < 6) (List.sort_uniq compare panel)
          in
          List.for_all
            (fun (plan, _) ->
               let result = Ghost_db.run_plan db plan in
               rows_equal result.Exec.rows expected)
            picked))

let suite = [
  Alcotest.test_case "all queries x all plans = reference" `Slow test_all_queries_all_plans;
  Alcotest.test_case "optimizer pick runs" `Quick test_optimizer_pick_runs;
  Alcotest.test_case "demo query non-vacuous" `Quick test_nonempty_results;
  Alcotest.test_case "canonical plans differ, agree on answer" `Quick test_canonical_plans_differ;
  Alcotest.test_case "privacy audit over full suite" `Quick test_privacy_audit;
  Alcotest.test_case "spy sees only public data" `Quick test_spy_sees_only_public;
  Alcotest.test_case "hidden predicates rejected publicly" `Quick test_hidden_predicates_never_reach_public;
  Alcotest.test_case "storage report" `Quick test_storage_report;
  Alcotest.test_case "operator stats consistency" `Quick test_op_stats_consistency;
  Alcotest.test_case "exact post beats bad bloom" `Quick test_exact_post_blocks_bloom_fps;
  Alcotest.test_case "cost estimates finite" `Quick test_estimates_are_finite;
  prop_random_plans_match_reference;
]
