(* Tests for the SQL subset: lexer, parser, binder. *)

module Value = Ghost_kernel.Value
module Date = Ghost_kernel.Date
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate
module Lexer = Ghost_sql.Lexer
module Parser = Ghost_sql.Parser
module Ast = Ghost_sql.Ast
module Bind = Ghost_sql.Bind

let check = Alcotest.check

let medical_ddl = {|
CREATE TABLE Doctor (
  DocID INTEGER PRIMARY KEY,
  Name CHAR(20),
  Speciality CHAR(20),
  Zip INTEGER,
  Country CHAR(16));

CREATE TABLE Patient (
  PatID INTEGER PRIMARY KEY,
  Name CHAR(20) HIDDEN,
  Age INTEGER,
  BodyMassIndex FLOAT HIDDEN,
  Country CHAR(16));

CREATE TABLE Medicine (
  MedID INTEGER PRIMARY KEY,
  Name CHAR(20),
  Effect CHAR(20),
  Type CHAR(16));

CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Purpose CHAR(20) HIDDEN,
  DocID INTEGER REFERENCES Doctor(DocID) HIDDEN,
  PatID INTEGER REFERENCES Patient(PatID) HIDDEN);

CREATE TABLE Prescription (
  PreID INTEGER PRIMARY KEY,
  Quantity INTEGER HIDDEN,
  Frequency INTEGER,
  WhenWritten DATE HIDDEN,
  MedID INTEGER REFERENCES Medicine(MedID) HIDDEN,
  VisID INTEGER REFERENCES Visit(VisID) HIDDEN);
|}

let medical_schema () = Bind.ddl_to_schema (Parser.parse_ddl medical_ddl)

(* The paper's Section 4 example query. *)
let demo_query = {|
SELECT Med.Name, Pre.Quantity, Vis.Date
FROM Medicine Med, Prescription Pre, Visit Vis
WHERE Vis.Date > '2006-11-05'
  AND Vis.Purpose = 'Sclerosis'
  AND Med.Type = 'Antibiotic'
  AND Med.MedID = Pre.MedID
  AND Vis.VisID = Pre.VisID
|}

let test_lexer_basics () =
  let toks = Lexer.tokenize "SELECT a.b, c FROM t WHERE x >= 10 -- comment\n AND s = 'it''s'" in
  check Alcotest.int "token count" 17 (List.length toks);
  (match toks with
   | Lexer.Kw ("SELECT", _) :: Lexer.Ident "a" :: Lexer.Symbol "." :: _ -> ()
   | _ -> Alcotest.fail "unexpected prefix");
  check Alcotest.bool "string escape" true
    (List.exists (fun t -> t = Lexer.String_lit "it's") toks)

let test_lexer_keyword_case () =
  match Lexer.tokenize "select Date" with
  | [ Lexer.Kw ("SELECT", "select"); Lexer.Kw ("DATE", "Date"); Lexer.Eof ] -> ()
  | _ -> Alcotest.fail "case handling wrong"

let test_lexer_errors () =
  try
    ignore (Lexer.tokenize "a @ b");
    Alcotest.fail "expected Lex_error"
  with Lexer.Lex_error _ -> ()

let test_parse_ddl () =
  let creates = Parser.parse_ddl medical_ddl in
  check Alcotest.int "5 tables" 5 (List.length creates);
  let visit = List.find (fun c -> c.Ast.table_name = "Visit") creates in
  let purpose =
    List.find (fun c -> c.Ast.col_name = "Purpose") visit.Ast.ddl_columns
  in
  check Alcotest.bool "hidden" true purpose.Ast.hidden;
  let docid = List.find (fun c -> c.Ast.col_name = "DocID") visit.Ast.ddl_columns in
  check Alcotest.(option string) "refs" (Some "Doctor") docid.Ast.references

let test_parse_select () =
  let s = Parser.parse_select demo_query in
  check Alcotest.int "3 projections" 3 (List.length s.Ast.projections);
  check Alcotest.int "3 from" 3 (List.length s.Ast.from);
  check Alcotest.int "5 conditions" 5 (List.length s.Ast.where);
  let joins =
    List.filter (function Ast.C_join _ -> true | _ -> false) s.Ast.where
  in
  check Alcotest.int "2 joins" 2 (List.length joins)

let test_parse_between_in () =
  let s =
    Parser.parse_select
      "SELECT ID FROM T WHERE a BETWEEN 1 AND 5 AND b IN ('x','y') AND c <> 0"
  in
  check Alcotest.int "3 conditions" 3 (List.length s.Ast.where)

let test_parse_date_literal () =
  let s = Parser.parse_select "SELECT ID FROM T WHERE d > DATE '2006-11-05'" in
  match s.Ast.where with
  | [ Ast.C_cmp (_, Ast.Op_gt, Ast.L_string "2006-11-05") ] -> ()
  | _ -> Alcotest.fail "date literal not parsed"

let test_parse_errors () =
  List.iter
    (fun sql ->
       try
         ignore (Parser.parse_statement sql);
         Alcotest.fail ("expected Parse_error for: " ^ sql)
       with Parser.Parse_error _ -> ())
    [
      "SELECT FROM t";
      "CREATE TABLE t ()";
      "SELECT a FROM";
      "SELECT a FROM t WHERE";
      "SELECT a FROM t WHERE a < b";  (* non-equi join *)
      "DROP TABLE t";
      "SELECT a FROM t extra garbage ;;";
    ]

let test_ddl_to_schema () =
  let s = medical_schema () in
  check Alcotest.string "root" "Prescription" (Schema.root s).Schema.name;
  let visit = Schema.find_table s "Visit" in
  check Alcotest.bool "Purpose hidden" true
    (Column.is_hidden (Schema.find_column visit "Purpose"));
  check Alcotest.bool "Date visible" false
    (Column.is_hidden (Schema.find_column visit "Date"))

let test_ddl_rejects_hidden_key () =
  try
    ignore
      (Bind.ddl_to_schema
         (Parser.parse_ddl "CREATE TABLE T (ID INTEGER PRIMARY KEY HIDDEN, x INT)"));
    Alcotest.fail "expected Bind_error"
  with Bind.Bind_error _ -> ()

let test_bind_demo_query () =
  let s = medical_schema () in
  let q = Bind.bind s demo_query in
  check Alcotest.(list string) "tables"
    [ "Medicine"; "Prescription"; "Visit" ]
    q.Bind.tables;
  check Alcotest.int "3 selections" 3 (List.length q.Bind.selections);
  check Alcotest.int "2 edges" 2 (List.length q.Bind.join_edges);
  check
    Alcotest.(list (pair string string))
    "edges"
    [ ("Prescription", "Medicine"); ("Prescription", "Visit") ]
    q.Bind.join_edges;
  (* date literal coerced *)
  let date_sel =
    List.find (fun p -> p.Predicate.column = "Date") q.Bind.selections
  in
  (match date_sel.Predicate.cmp with
   | Predicate.Gt (Value.Date d) ->
     check Alcotest.int "coerced date" (Date.of_string "2006-11-05") d
   | _ -> Alcotest.fail "Date literal not coerced");
  check Alcotest.(list (pair string string)) "projections"
    [ ("Medicine", "Name"); ("Prescription", "Quantity"); ("Visit", "Date") ]
    q.Bind.projections

let test_bind_unqualified_and_alias () =
  let s = medical_schema () in
  let q = Bind.bind s "SELECT Speciality FROM Doctor D WHERE D.Country = 'Spain'" in
  check Alcotest.(list (pair string string)) "resolved"
    [ ("Doctor", "Speciality") ]
    q.Bind.projections;
  check Alcotest.int "one selection" 1 (List.length q.Bind.selections)

let test_bind_errors () =
  let s = medical_schema () in
  List.iter
    (fun sql ->
       try
         ignore (Bind.bind s sql);
         Alcotest.fail ("expected Bind_error for: " ^ sql)
       with Bind.Bind_error _ -> ())
    [
      "SELECT Nope FROM Doctor";
      "SELECT Name FROM Doctor, Patient WHERE Doctor.Country = 'x'";
      (* disconnected: no join between Doctor and Patient *)
      "SELECT Doctor.Name FROM Doctor, Patient WHERE Doctor.DocID = Patient.PatID";
      (* not an FK edge *)
      "SELECT Name FROM Unknown";
      "SELECT Doctor.Name FROM Doctor WHERE Doctor.Zip = 'notanint'";
    ]

let test_bind_ambiguous_column () =
  let s = medical_schema () in
  try
    ignore
      (Bind.bind s
         "SELECT Name FROM Doctor, Visit, Patient WHERE Visit.DocID = Doctor.DocID AND Visit.PatID = Patient.PatID");
    Alcotest.fail "expected ambiguity error"
  with Bind.Bind_error _ -> ()

let test_surface_roundtrip () =
  (* re-parsing a bound query's rendered text gives the same bound
     query (modulo the text itself) *)
  let s = medical_schema () in
  let queries =
    List.map snd Ghost_workload.Queries.all
    @ [
        "SELECT Pat.Country, COUNT(*), AVG(Pat.Age) FROM Patient Pat GROUP BY \
         Pat.Country ORDER BY Pat.Country LIMIT 3";
        "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose LIKE 'Dia%'";
      ]
  in
  List.iter
    (fun sql ->
       let q1 = Bind.bind s sql in
       let q2 = Bind.bind s q1.Bind.text in
       let strip (q : Bind.query) =
         (q.Bind.tables, q.Bind.projections, q.Bind.selections, q.Bind.join_edges,
          q.Bind.aggregate, q.Bind.order_by, q.Bind.limit)
       in
       if strip q1 <> strip q2 then Alcotest.failf "roundtrip changed: %s" sql)
    queries

let suite = [
  Alcotest.test_case "surface form roundtrip" `Quick test_surface_roundtrip;
  Alcotest.test_case "lexer basics" `Quick test_lexer_basics;
  Alcotest.test_case "lexer keyword case" `Quick test_lexer_keyword_case;
  Alcotest.test_case "lexer errors" `Quick test_lexer_errors;
  Alcotest.test_case "parse ddl" `Quick test_parse_ddl;
  Alcotest.test_case "parse select (paper query)" `Quick test_parse_select;
  Alcotest.test_case "parse between/in" `Quick test_parse_between_in;
  Alcotest.test_case "parse date literal" `Quick test_parse_date_literal;
  Alcotest.test_case "parse errors" `Quick test_parse_errors;
  Alcotest.test_case "ddl to schema" `Quick test_ddl_to_schema;
  Alcotest.test_case "ddl rejects hidden key" `Quick test_ddl_rejects_hidden_key;
  Alcotest.test_case "bind demo query" `Quick test_bind_demo_query;
  Alcotest.test_case "bind unqualified + alias" `Quick test_bind_unqualified_and_alias;
  Alcotest.test_case "bind errors" `Quick test_bind_errors;
  Alcotest.test_case "bind ambiguous column" `Quick test_bind_ambiguous_column;
]
