(* Tests for the relational model and tree-schema analysis. *)

module Value = Ghost_kernel.Value
module Column = Ghost_relation.Column
module Schema = Ghost_relation.Schema
module Predicate = Ghost_relation.Predicate
module Relation = Ghost_relation.Relation

let check = Alcotest.check

(* The Figure 3 medical schema. *)
let medical_schema () =
  let doctor =
    Schema.table ~name:"Doctor" ~key:"DocID"
      [
        Column.make "Name" (Value.T_char 20);
        Column.make "Speciality" (Value.T_char 20);
        Column.make "Zip" Value.T_int;
        Column.make "Country" (Value.T_char 16);
      ]
  in
  let patient =
    Schema.table ~name:"Patient" ~key:"PatID"
      [
        Column.make ~visibility:Column.Hidden "Name" (Value.T_char 20);
        Column.make "Age" Value.T_int;
        Column.make ~visibility:Column.Hidden "BodyMassIndex" Value.T_float;
        Column.make "Country" (Value.T_char 16);
      ]
  in
  let medicine =
    Schema.table ~name:"Medicine" ~key:"MedID"
      [
        Column.make "Name" (Value.T_char 20);
        Column.make "Effect" (Value.T_char 20);
        Column.make "Type" (Value.T_char 16);
      ]
  in
  let visit =
    Schema.table ~name:"Visit" ~key:"VisID"
      [
        Column.make "Date" Value.T_date;
        Column.make ~visibility:Column.Hidden "Purpose" (Value.T_char 20);
        Column.make ~visibility:Column.Hidden ~refs:"Doctor" "DocID" Value.T_int;
        Column.make ~visibility:Column.Hidden ~refs:"Patient" "PatID" Value.T_int;
      ]
  in
  let prescription =
    Schema.table ~name:"Prescription" ~key:"PreID"
      [
        Column.make ~visibility:Column.Hidden "Quantity" Value.T_int;
        Column.make "Frequency" Value.T_int;
        Column.make ~visibility:Column.Hidden "WhenWritten" Value.T_date;
        Column.make ~visibility:Column.Hidden ~refs:"Medicine" "MedID" Value.T_int;
        Column.make ~visibility:Column.Hidden ~refs:"Visit" "VisID" Value.T_int;
      ]
  in
  Schema.create [ doctor; patient; medicine; visit; prescription ]

let test_column_validation () =
  Alcotest.check_raises "fk must be int"
    (Invalid_argument "Column.make: a foreign key must be an INTEGER column") (fun () ->
      ignore (Column.make ~refs:"T" "x" Value.T_date))

let test_tree_structure () =
  let s = medical_schema () in
  check Alcotest.string "root" "Prescription" (Schema.root s).Schema.name;
  check Alcotest.(list string) "climb path from Doctor"
    [ "Doctor"; "Visit"; "Prescription" ]
    (Schema.climb_path s "Doctor");
  check Alcotest.(list string) "subtree of Visit"
    [ "Visit"; "Doctor"; "Patient" ]
    (Schema.subtree s "Visit");
  check Alcotest.int "depth" 2 (Schema.depth s "Patient");
  check Alcotest.(option (pair string string)) "parent of Visit"
    (Some ("Prescription", "VisID"))
    (Schema.parent s "Visit");
  check Alcotest.(option (pair string string)) "root has no parent" None
    (Schema.parent s "Prescription")

let test_subtree_root () =
  let s = medical_schema () in
  check Alcotest.string "doctor+patient -> Visit" "Visit"
    (Schema.subtree_root s [ "Doctor"; "Patient" ]);
  check Alcotest.string "medicine+visit -> Prescription" "Prescription"
    (Schema.subtree_root s [ "Medicine"; "Visit" ]);
  check Alcotest.string "single table" "Doctor" (Schema.subtree_root s [ "Doctor" ]);
  check Alcotest.string "ancestor dominates" "Visit"
    (Schema.subtree_root s [ "Visit"; "Doctor" ])

let test_fk_path () =
  let s = medical_schema () in
  check Alcotest.(list string) "prescription -> doctor"
    [ "VisID"; "DocID" ]
    (Schema.fk_path s ~from_root:"Prescription" "Doctor");
  check Alcotest.(list string) "self" [] (Schema.fk_path s ~from_root:"Visit" "Visit")

let test_not_a_tree_detection () =
  let orphan =
    Schema.table ~name:"A" ~key:"AID" [ Column.make "x" Value.T_int ]
  in
  let other = Schema.table ~name:"B" ~key:"BID" [ Column.make "y" Value.T_int ] in
  (try
     ignore (Schema.create [ orphan; other ]);
     Alcotest.fail "expected Not_a_tree (two roots)"
   with Schema.Not_a_tree _ -> ());
  let dangling =
    Schema.table ~name:"C" ~key:"CID" [ Column.make ~refs:"Nowhere" "fk" Value.T_int ]
  in
  (try
     ignore (Schema.create [ dangling ]);
     Alcotest.fail "expected Not_a_tree (unknown ref)"
   with Schema.Not_a_tree _ -> ())

let test_double_reference_rejected () =
  let leaf = Schema.table ~name:"Leaf" ~key:"LID" [] in
  let p1 =
    Schema.table ~name:"P1" ~key:"P1ID" [ Column.make ~refs:"Leaf" "fk" Value.T_int ]
  in
  let p2 =
    Schema.table ~name:"P2" ~key:"P2ID"
      [
        Column.make ~refs:"Leaf" "fk" Value.T_int;
        Column.make ~refs:"P1" "fk2" Value.T_int;
      ]
  in
  try
    ignore (Schema.create [ leaf; p1; p2 ]);
    Alcotest.fail "expected Not_a_tree (two parents)"
  with Schema.Not_a_tree _ -> ()

let test_column_index_layout () =
  let s = medical_schema () in
  let visit = Schema.find_table s "Visit" in
  check Alcotest.int "key first" 0 (Schema.column_index visit "VisID");
  check Alcotest.int "Date" 1 (Schema.column_index visit "Date");
  check Alcotest.int "arity" 5 (Schema.arity visit)

let test_predicate_eval () =
  let open Predicate in
  check Alcotest.bool "eq" true (eval (Eq (Value.Int 3)) (Value.Int 3));
  check Alcotest.bool "neq" false (eval (Ne (Value.Int 3)) (Value.Int 3));
  check Alcotest.bool "between incl" true
    (eval (Between (Value.Int 1, Value.Int 3)) (Value.Int 3));
  check Alcotest.bool "in" true
    (eval (In [ Value.Str "a"; Value.Str "b" ]) (Value.Str "b"));
  check Alcotest.bool "null never matches" false (eval (Eq Value.Null) Value.Null);
  check Alcotest.bool "str padding" true
    (eval (Eq (Value.Str "abc")) (Value.Str "abc\000"))

let small_relation () =
  let t =
    Schema.table ~name:"T" ~key:"ID"
      [ Column.make "v" Value.T_int; Column.make "s" (Value.T_char 8) ]
  in
  Relation.create t
    [
      [| Value.Int 1; Value.Int 10; Value.Str "a" |];
      [| Value.Int 2; Value.Int 20; Value.Str "b" |];
      [| Value.Int 3; Value.Int 20; Value.Str "c" |];
    ]

let test_relation_basics () =
  let r = small_relation () in
  check Alcotest.int "cardinality" 3 (Relation.cardinality r);
  (match Relation.find r 2 with
   | Some row ->
     check Alcotest.bool "value" true (Value.equal (Value.Int 20) (Relation.value r row "v"))
   | None -> Alcotest.fail "key 2 not found");
  check Alcotest.(array int) "select_ids" [| 2; 3 |]
    (Relation.select_ids r (Predicate.Eq (Value.Int 20)) "v")

let test_relation_validation () =
  let t = Schema.table ~name:"T" ~key:"ID" [ Column.make "v" Value.T_int ] in
  (try
     ignore (Relation.create t [ [| Value.Int 1 |] ]);
     Alcotest.fail "expected arity error"
   with Invalid_argument _ -> ());
  (try
     ignore
       (Relation.create t
          [ [| Value.Int 1; Value.Int 1 |]; [| Value.Int 1; Value.Int 2 |] ]);
     Alcotest.fail "expected duplicate key error"
   with Invalid_argument _ -> ());
  try
    ignore (Relation.create t [ [| Value.Int 1; Value.Str "no" |] ]);
    Alcotest.fail "expected type error"
  with Invalid_argument _ -> ()

let suite = [
  Alcotest.test_case "column validation" `Quick test_column_validation;
  Alcotest.test_case "tree structure" `Quick test_tree_structure;
  Alcotest.test_case "subtree root (LCA)" `Quick test_subtree_root;
  Alcotest.test_case "fk path" `Quick test_fk_path;
  Alcotest.test_case "not-a-tree detection" `Quick test_not_a_tree_detection;
  Alcotest.test_case "double reference rejected" `Quick test_double_reference_rejected;
  Alcotest.test_case "column index layout" `Quick test_column_index_layout;
  Alcotest.test_case "predicate eval" `Quick test_predicate_eval;
  Alcotest.test_case "relation basics" `Quick test_relation_basics;
  Alcotest.test_case "relation validation" `Quick test_relation_validation;
]
