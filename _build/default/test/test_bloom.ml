(* Tests for Bloom filters. *)

module Bloom = Ghost_bloom.Bloom
module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let prop_no_false_negatives =
  QCheck.Test.make ~name:"bloom has no false negatives" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 0 200) int)
    (fun keys ->
       let b = Bloom.create ~m_bits:4096 ~k:4 in
       List.iter (Bloom.add b) keys;
       List.for_all (Bloom.mem b) keys)

let test_fpr_within_bound () =
  let n = 1000 in
  let m_bits = Bloom.bits_for_fpr ~n ~fpr:0.01 in
  let b = Bloom.create ~m_bits ~k:(Bloom.optimal_k ~m_bits ~n) in
  let rng = Rng.create 99 in
  let members = Array.init n (fun i -> i) in
  Array.iter (Bloom.add b) members;
  (* probe 10_000 non-members *)
  let false_positives = ref 0 in
  let probes = 10_000 in
  for _ = 1 to probes do
    let probe = n + 1 + Rng.int rng 1_000_000 in
    if Bloom.mem b probe then incr false_positives
  done;
  let measured = Float.of_int !false_positives /. Float.of_int probes in
  check Alcotest.bool
    (Printf.sprintf "measured fpr %.4f < 0.03" measured)
    true (measured < 0.03);
  let predicted = Bloom.estimated_fpr b ~n in
  check Alcotest.bool "prediction in the ballpark" true
    (Float.abs (predicted -. 0.01) < 0.01)

let test_sizing () =
  let b = Bloom.sized_for ~budget_bytes:1024 ~n:500 in
  check Alcotest.int "ram footprint" 1024 (Bloom.size_bytes b);
  check Alcotest.int "m bits" 8192 (Bloom.m_bits b);
  check Alcotest.bool "k reasonable" true (Bloom.k b >= 1 && Bloom.k b <= 30)

let test_smaller_ram_worse_fpr () =
  let n = 2000 in
  let big = Bloom.sized_for ~budget_bytes:4096 ~n in
  let small = Bloom.sized_for ~budget_bytes:256 ~n in
  check Alcotest.bool "fpr degrades with ram" true
    (Bloom.estimated_fpr small ~n > Bloom.estimated_fpr big ~n)

let test_values () =
  let b = Bloom.create ~m_bits:2048 ~k:3 in
  Bloom.add_value b (Value.Str "Antibiotic");
  check Alcotest.bool "member" true (Bloom.mem_value b (Value.Str "Antibiotic"));
  check Alcotest.bool "padding-insensitive" true
    (Bloom.mem_value b (Value.Str "Antibiotic\000\000"))

let test_invalid_args () =
  Alcotest.check_raises "m_bits" (Invalid_argument "Bloom.create: m_bits <= 0")
    (fun () -> ignore (Bloom.create ~m_bits:0 ~k:1));
  Alcotest.check_raises "fpr" (Invalid_argument "Bloom.bits_for_fpr: fpr out of (0,1)")
    (fun () -> ignore (Bloom.bits_for_fpr ~n:10 ~fpr:1.5))

let test_count_set_bits () =
  let b = Bloom.create ~m_bits:64 ~k:2 in
  check Alcotest.int "empty" 0 (Bloom.count_set_bits b);
  Bloom.add b 42;
  check Alcotest.bool "some bits set" true
    (Bloom.count_set_bits b >= 1 && Bloom.count_set_bits b <= 2)

let suite = [
  qtest prop_no_false_negatives;
  Alcotest.test_case "fpr within bound" `Quick test_fpr_within_bound;
  Alcotest.test_case "sizing for budget" `Quick test_sizing;
  Alcotest.test_case "smaller ram, worse fpr" `Quick test_smaller_ram_worse_fpr;
  Alcotest.test_case "value api" `Quick test_values;
  Alcotest.test_case "invalid args" `Quick test_invalid_args;
  Alcotest.test_case "count set bits" `Quick test_count_set_bits;
]
