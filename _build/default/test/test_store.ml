(* Tests for the on-flash structures. *)

module Value = Ghost_kernel.Value
module Cursor = Ghost_kernel.Cursor
module Rng = Ghost_kernel.Rng
module Sorted_ids = Ghost_kernel.Sorted_ids
module Resources = Ghost_kernel.Resources
module Flash = Ghost_flash.Flash
module Ram = Ghost_device.Ram
module Predicate = Ghost_relation.Predicate
module Pager = Ghost_store.Pager
module Id_list = Ghost_store.Id_list
module Column_store = Ghost_store.Column_store
module Skt = Ghost_store.Skt
module Climbing_index = Ghost_store.Climbing_index
module Merge_union = Ghost_store.Merge_union
module Ext_sort = Ghost_store.Ext_sort

let check = Alcotest.check
let qtest = QCheck_alcotest.to_alcotest

let flash () = Flash.create ~geometry:{ Flash.page_size = 256; pages_per_block = 8 } ()

(* ---- Pager ---- *)

let test_pager_roundtrip () =
  let f = flash () in
  let payload = String.init 1000 (fun i -> Char.chr (i mod 251)) in
  let seg = Pager.write_segment f payload in
  check Alcotest.int "length" 1000 (Pager.segment_bytes seg);
  Pager.with_reader f seg (fun r ->
    check Alcotest.string "whole" payload
      (Bytes.to_string (Pager.Reader.read r ~off:0 ~len:1000));
    check Alcotest.string "cross-page" (String.sub payload 250 12)
      (Bytes.to_string (Pager.Reader.read r ~off:250 ~len:12));
    check Alcotest.string "tail" (String.sub payload 990 10)
      (Bytes.to_string (Pager.Reader.read r ~off:990 ~len:10)))

let test_pager_window_caching () =
  let f = flash () in
  let seg = Pager.write_segment f (String.make 512 'x') in
  Pager.with_reader ~buffer_bytes:64 f seg (fun r ->
    let before = (Flash.stats f).Flash.page_reads in
    ignore (Pager.Reader.read r ~off:0 ~len:8);
    let after_first = (Flash.stats f).Flash.page_reads in
    ignore (Pager.Reader.read r ~off:8 ~len:8);
    ignore (Pager.Reader.read r ~off:16 ~len:8);
    let after_cached = (Flash.stats f).Flash.page_reads in
    check Alcotest.bool "first read hits flash" true (after_first > before);
    check Alcotest.int "window serves next reads" after_first after_cached)

let test_pager_ram_accounting () =
  let f = flash () in
  let ram = Ram.create ~budget:4096 in
  let seg = Pager.write_segment f "hello" in
  let r = Pager.Reader.open_ ~ram ~buffer_bytes:512 f seg in
  check Alcotest.int "buffer charged" 512 (Ram.in_use ram);
  Pager.Reader.close r;
  check Alcotest.int "freed" 0 (Ram.in_use ram);
  Pager.Reader.close r;
  check Alcotest.int "idempotent" 0 (Ram.in_use ram)

let test_pager_bounds () =
  let f = flash () in
  let seg = Pager.write_segment f "abc" in
  Pager.with_reader f seg (fun r ->
    try
      ignore (Pager.Reader.read r ~off:1 ~len:3);
      Alcotest.fail "expected out of bounds"
    with Invalid_argument _ -> ())

(* ---- Id_list ---- *)

let sorted_gen =
  QCheck.Gen.(map Sorted_ids.of_unsorted (list_size (0 -- 60) (0 -- 10000)))

let arb_sorted = QCheck.make ~print:QCheck.Print.(array int) sorted_gen

let prop_id_list_roundtrip =
  QCheck.Test.make ~name:"id list encode/decode roundtrip" ~count:300 arb_sorted
    (fun ids ->
       Id_list.decode (Bytes.of_string (Id_list.encode ids)) = ids)

let prop_id_list_cursor =
  QCheck.Test.make ~name:"id list cursor streams the list" ~count:200 arb_sorted
    (fun ids ->
       let f = flash () in
       let encoded = Id_list.encode ids in
       let seg = Pager.write_segment f ("junk" ^ encoded) in
       Pager.with_reader ~buffer_bytes:16 f seg (fun r ->
         Cursor.to_list (Id_list.cursor r ~off:4 ~len:(String.length encoded))
         = Array.to_list ids))

let test_id_list_rejects_unsorted () =
  try
    ignore (Id_list.encode [| 3; 1 |]);
    Alcotest.fail "expected Invalid_argument"
  with Invalid_argument _ -> ()

(* ---- Column_store ---- *)

let test_column_store_get_scan () =
  let f = flash () in
  let values = Array.init 100 (fun i -> Value.Int (i * 7)) in
  let cs = Column_store.build f Value.T_int values in
  check Alcotest.int "count" 100 (Column_store.count cs);
  let r = Column_store.open_reader cs in
  check Alcotest.bool "get 1" true (Value.equal (Value.Int 0) (Column_store.get r 1));
  check Alcotest.bool "get 100" true
    (Value.equal (Value.Int 693) (Column_store.get r 100));
  let scanned = Cursor.to_list (Column_store.scan r) in
  check Alcotest.int "scan length" 100 (List.length scanned);
  check Alcotest.bool "scan pairs" true
    (List.for_all (fun (id, v) -> Value.equal v (Value.Int ((id - 1) * 7))) scanned);
  Column_store.close_reader r

let test_column_store_strings () =
  let f = flash () in
  let values = [| Value.Str "alpha"; Value.Str "beta"; Value.Str "a-very-long-nam" |] in
  let cs = Column_store.build f (Value.T_char 16) values in
  let r = Column_store.open_reader cs in
  check Alcotest.bool "string roundtrip" true
    (Value.equal (Value.Str "beta") (Column_store.get r 2));
  Column_store.close_reader r

let test_column_store_matching_ids () =
  let f = flash () in
  let values = Array.init 50 (fun i -> Value.Int (i mod 5)) in
  let cs = Column_store.build f Value.T_int values in
  let r = Column_store.open_reader cs in
  let ids = Cursor.to_array (Column_store.matching_ids r (Predicate.Eq (Value.Int 3))) in
  check Alcotest.int "10 matches" 10 (Array.length ids);
  check Alcotest.bool "sorted" true (Sorted_ids.is_sorted ids);
  check Alcotest.bool "all match" true
    (Array.for_all (fun id -> (id - 1) mod 5 = 3) ids);
  Column_store.close_reader r

(* ---- Skt ---- *)

let test_skt_roundtrip () =
  let f = flash () in
  let rows = Array.init 20 (fun i -> [| i + 1; ((i + 1) mod 7) + 1; ((i + 1) mod 3) + 1 |]) in
  let skt = Skt.build f ~root:"R" ~levels:[ "R"; "A"; "B" ] ~rows in
  check Alcotest.int "root count" 20 (Skt.root_count skt);
  check Alcotest.int "row width" 12 (Skt.row_width skt);
  check Alcotest.int "level index" 1 (Skt.level_index skt "A");
  let r = Skt.open_reader skt in
  check Alcotest.(array int) "row 5" rows.(4) (Skt.get r 5);
  check Alcotest.int "level read" rows.(9).(2) (Skt.get_level r 10 ~level:2);
  let all = Cursor.to_list (Skt.scan r) in
  check Alcotest.int "scan" 20 (List.length all);
  Skt.close_reader r

let test_skt_validation () =
  let f = flash () in
  (try
     ignore (Skt.build f ~root:"R" ~levels:[ "A"; "R" ] ~rows:[||]);
     Alcotest.fail "expected root-first error"
   with Invalid_argument _ -> ());
  try
    ignore (Skt.build f ~root:"R" ~levels:[ "R" ] ~rows:[| [| 2 |] |]);
    Alcotest.fail "expected dense-id error"
  with Invalid_argument _ -> ()

(* ---- Climbing_index (sorted) ---- *)

let build_sorted_index f entries =
  Climbing_index.build_sorted f ~table:"T" ~column:"c" ~levels:[ "T"; "P"; "R" ] entries

let example_entries =
  [
    (Value.Str "Antibiotic", [| [| 2; 5 |]; [| 1; 2; 9 |]; [| 3 |] |]);
    (Value.Str "Sclerosis", [| [| 1 |]; [| 4 |]; [| 1; 2 |] |]);
    (Value.Str "Zoster", [| [| 3; 4 |]; [| 5; 6 |]; [| 4; 5; 6 |] |]);
  ]

let drain source =
  let cursor, close = source () in
  let ids = Cursor.to_array cursor in
  close ();
  ids

let test_climbing_eq () =
  let f = flash () in
  let ram = Ram.create ~budget:65536 in
  let idx = build_sorted_index f example_entries in
  check Alcotest.int "entries" 3 (Climbing_index.entry_count idx);
  (match Climbing_index.lookup_eq ~ram idx (Value.Str "Sclerosis") ~level:"R" with
   | Some src -> check Alcotest.(array int) "root level" [| 1; 2 |] (drain src)
   | None -> Alcotest.fail "value not found");
  (match Climbing_index.lookup_eq ~ram idx (Value.Str "Antibiotic") ~level:"T" with
   | Some src -> check Alcotest.(array int) "own level" [| 2; 5 |] (drain src)
   | None -> Alcotest.fail "value not found");
  check Alcotest.(option unit) "absent value" None
    (Option.map ignore (Climbing_index.lookup_eq ~ram idx (Value.Str "Nope") ~level:"T"));
  check Alcotest.int "count_eq" 3
    (Climbing_index.count_eq ~ram idx (Value.Str "Antibiotic") ~level:"P");
  check Alcotest.int "ram released" 0 (Ram.in_use ram)

let union_all ~ram ~scratch sources =
  Resources.with_resources (fun resources ->
    Cursor.to_array (Merge_union.union ~ram ~scratch ~resources sources))

let test_climbing_range () =
  let f = flash () in
  let scratch = flash () in
  let ram = Ram.create ~budget:65536 in
  let entries =
    List.init 20 (fun i ->
      (Value.Int (i * 10), [| [| i + 1 |]; [| (2 * i) + 1; (2 * i) + 2 |]; [| i + 1 |] |]))
  in
  let idx = build_sorted_index f entries in
  let sources =
    Climbing_index.lookup_cmp ~ram idx
      (Predicate.Between (Value.Int 30, Value.Int 60))
      ~level:"T"
  in
  check Alcotest.(array int) "between" [| 4; 5; 6; 7 |] (union_all ~ram ~scratch sources);
  let lt = Climbing_index.lookup_cmp ~ram idx (Predicate.Lt (Value.Int 30)) ~level:"T" in
  check Alcotest.(array int) "lt" [| 1; 2; 3 |] (union_all ~ram ~scratch lt);
  let ge =
    Climbing_index.lookup_cmp ~ram idx (Predicate.Ge (Value.Int 180)) ~level:"T"
  in
  check Alcotest.(array int) "ge" [| 19; 20 |] (union_all ~ram ~scratch ge);
  let ne = Climbing_index.lookup_cmp ~ram idx (Predicate.Ne (Value.Int 0)) ~level:"T" in
  check Alcotest.int "ne count" 19 (Array.length (union_all ~ram ~scratch ne));
  let in_ =
    Climbing_index.lookup_cmp ~ram idx
      (Predicate.In [ Value.Int 50; Value.Int 0; Value.Int 999 ])
      ~level:"T"
  in
  check Alcotest.(array int) "in" [| 1; 6 |] (union_all ~ram ~scratch in_)

let prop_climbing_eq_random =
  QCheck.Test.make ~name:"climbing index eq lookups match the build input" ~count:50
    QCheck.(int_range 1 60)
    (fun n ->
       let f = flash () in
       let ram = Ram.create ~budget:65536 in
       let rng = Rng.create n in
       let entries =
         List.init n (fun i ->
           let lists =
             [|
               Sorted_ids.of_unsorted (List.init (1 + Rng.int rng 5) (fun _ -> 1 + Rng.int rng 500));
               Sorted_ids.of_unsorted (List.init (1 + Rng.int rng 8) (fun _ -> 1 + Rng.int rng 900));
               Sorted_ids.of_unsorted (List.init (1 + Rng.int rng 3) (fun _ -> 1 + Rng.int rng 100));
             |]
           in
           (Value.Int (i * 3), lists))
       in
       let idx = build_sorted_index f entries in
       List.for_all
         (fun (v, lists) ->
            match Climbing_index.lookup_eq ~ram idx v ~level:"P" with
            | Some src -> drain src = lists.(1)
            | None -> false)
         entries
       && Ram.in_use ram = 0)

let test_climbing_string_prefix_collision () =
  (* Strings sharing a 15-byte prefix must still be distinguished. *)
  let f = flash () in
  let ram = Ram.create ~budget:65536 in
  let a = "aaaaaaaaaaaaaaaaaaaaaaaa-one" and b = "aaaaaaaaaaaaaaaaaaaaaaaa-two" in
  let entries =
    [
      (Value.Str a, [| [| 1 |]; [| 10 |]; [| 100 |] |]);
      (Value.Str b, [| [| 2 |]; [| 20 |]; [| 200 |] |]);
    ]
  in
  let entries = List.sort (fun (x, _) (y, _) -> Value.compare x y) entries in
  let idx = build_sorted_index f entries in
  (match Climbing_index.lookup_eq ~ram idx (Value.Str b) ~level:"T" with
   | Some src -> check Alcotest.(array int) "collides resolved" [| 2 |] (drain src)
   | None -> Alcotest.fail "b not found");
  match Climbing_index.lookup_eq ~ram idx (Value.Str "aaaaaaaaaaaaaaaaaaaaaaaa-xxx") ~level:"T" with
  | Some _ -> Alcotest.fail "phantom match"
  | None -> ()

(* ---- Climbing_index (dense) ---- *)

let test_dense_index () =
  let f = flash () in
  let ram = Ram.create ~budget:65536 in
  (* id k at level P owns list [2k-1; 2k]; at level R owns [k]. *)
  let idx =
    Climbing_index.build_dense f ~table:"T" ~count:30 ~levels:[ "P"; "R" ] (fun id ->
      [| [| (2 * id) - 1; 2 * id |]; [| id |] |])
  in
  check Alcotest.(array int) "id 7 at P" [| 13; 14 |]
    (drain (Climbing_index.lookup_id ~ram idx 7 ~level:"P"));
  check Alcotest.(array int) "id 30 at R" [| 30 |]
    (drain (Climbing_index.lookup_id ~ram idx 30 ~level:"R"));
  check Alcotest.(array int) "out of range" [||]
    (drain (Climbing_index.lookup_id ~ram idx 31 ~level:"P"));
  try
    ignore (Climbing_index.lookup_eq ~ram idx (Value.Int 1) ~level:"P");
    Alcotest.fail "expected invalid sorted lookup on dense index"
  with Invalid_argument _ -> ()

(* ---- Merge_union ---- *)

let prop_union_matches_spec =
  QCheck.Test.make ~name:"merge union = sorted dedup union" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 12) arb_sorted)
    (fun lists ->
       let ram = Ram.create ~budget:8192 in
       let scratch = flash () in
       let sources = List.map Merge_union.of_array lists in
       let got = union_all ~ram ~scratch sources in
       let expected = Sorted_ids.union_many lists in
       got = expected && Ram.in_use ram = 0)

let test_union_hierarchical_spill () =
  (* Tiny arena forces multi-pass merging through scratch. *)
  let ram = Ram.create ~budget:1600 in
  let scratch = flash () in
  let lists = List.init 40 (fun i -> Array.init 30 (fun j -> (j * 40) + i)) in
  let sources = List.map Merge_union.of_array lists in
  let got = union_all ~ram ~scratch sources in
  check Alcotest.int "full range" 1200 (Array.length got);
  check Alcotest.bool "spilled to scratch" true
    ((Flash.stats scratch).Flash.page_programs > 0);
  check Alcotest.int "ram released" 0 (Ram.in_use ram)

(* ---- Ext_sort ---- *)

let record_of_int v =
  let b = Bytes.create 4 in
  Ghost_kernel.Codec.put_u32 b 0 v;
  b

let int_of_record b = Ghost_kernel.Codec.get_u32 b 0

let run_sort ~budget values =
  let ram = Ram.create ~budget in
  let scratch = flash () in
  let input = Cursor.map record_of_int (Cursor.of_list values) in
  let sorted =
    Resources.with_resources (fun resources ->
      Cursor.to_list
        (Cursor.map int_of_record
           (Ext_sort.sort ~ram ~scratch ~resources ~record_bytes:4
              ~compare:Bytes.compare input)))
  in
  (sorted, ram, scratch)

let prop_ext_sort_ram_path =
  QCheck.Test.make ~name:"ext sort (fits in ram) = List.sort" ~count:100
    QCheck.(list_of_size (QCheck.Gen.int_range 0 50) (0 -- 1_000_000))
    (fun values ->
       let sorted, ram, scratch = run_sort ~budget:65536 values in
       sorted = List.sort Int.compare values
       && Ram.in_use ram = 0
       && (Flash.stats scratch).Flash.page_programs = 0)

let prop_ext_sort_spill_path =
  QCheck.Test.make ~name:"ext sort (spilled) = List.sort" ~count:30
    QCheck.(list_of_size (QCheck.Gen.int_range 200 600) (0 -- 1_000_000))
    (fun values ->
       let sorted, ram, scratch = run_sort ~budget:600 values in
       sorted = List.sort Int.compare values
       && Ram.in_use ram = 0
       && (Flash.stats scratch).Flash.page_programs > 0)

let test_ext_sort_wrong_width () =
  let ram = Ram.create ~budget:4096 in
  let scratch = flash () in
  try
    Resources.with_resources (fun resources ->
      ignore
        (Cursor.to_list
           (Ext_sort.sort ~ram ~scratch ~resources ~record_bytes:4
              ~compare:Bytes.compare
              (Cursor.of_list [ Bytes.create 3 ]))));
    Alcotest.fail "expected width error"
  with Invalid_argument _ -> ()

let suite = [
  Alcotest.test_case "pager roundtrip" `Quick test_pager_roundtrip;
  Alcotest.test_case "pager window caching" `Quick test_pager_window_caching;
  Alcotest.test_case "pager ram accounting" `Quick test_pager_ram_accounting;
  Alcotest.test_case "pager bounds" `Quick test_pager_bounds;
  qtest prop_id_list_roundtrip;
  qtest prop_id_list_cursor;
  Alcotest.test_case "id list rejects unsorted" `Quick test_id_list_rejects_unsorted;
  Alcotest.test_case "column store get/scan" `Quick test_column_store_get_scan;
  Alcotest.test_case "column store strings" `Quick test_column_store_strings;
  Alcotest.test_case "column store matching ids" `Quick test_column_store_matching_ids;
  Alcotest.test_case "skt roundtrip" `Quick test_skt_roundtrip;
  Alcotest.test_case "skt validation" `Quick test_skt_validation;
  Alcotest.test_case "climbing index eq" `Quick test_climbing_eq;
  Alcotest.test_case "climbing index ranges" `Quick test_climbing_range;
  qtest prop_climbing_eq_random;
  Alcotest.test_case "climbing index prefix collision" `Quick test_climbing_string_prefix_collision;
  Alcotest.test_case "dense key index" `Quick test_dense_index;
  qtest prop_union_matches_spec;
  Alcotest.test_case "union hierarchical spill" `Quick test_union_hierarchical_spill;
  qtest prop_ext_sort_ram_path;
  qtest prop_ext_sort_spill_path;
  Alcotest.test_case "ext sort wrong width" `Quick test_ext_sort_wrong_width;
]
