(* Aggregation: SQL semantics on known data, engine vs reference, and
   device-side execution through all plans. *)

module Value = Ghost_kernel.Value
module Schema = Ghost_relation.Schema
module Parser = Ghost_sql.Parser
module Ast = Ghost_sql.Ast
module Bind = Ghost_sql.Bind
module Aggregate = Ghost_sql.Aggregate
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan

let check = Alcotest.check

(* ---- parsing ---- *)

let test_parse_aggregates () =
  let s =
    Parser.parse_select
      "SELECT Country, COUNT(*), AVG(Age), MIN(Age) FROM Patient GROUP BY Country"
  in
  check Alcotest.int "4 projections" 4 (List.length s.Ast.projections);
  check Alcotest.int "1 group col" 1 (List.length s.Ast.group_by);
  (match s.Ast.projections with
   | [ Ast.P_col _; Ast.P_agg (Ast.Count, None); Ast.P_agg (Ast.Avg, Some _);
       Ast.P_agg (Ast.Min, Some _) ] -> ()
   | _ -> Alcotest.fail "wrong projection shapes")

let test_parse_agg_errors () =
  List.iter
    (fun sql ->
       try
         ignore (Parser.parse_select sql);
         Alcotest.fail ("expected Parse_error for " ^ sql)
       with Parser.Parse_error _ -> ())
    [ "SELECT SUM(*) FROM T"; "SELECT COUNT( FROM T"; "SELECT AVG() FROM T" ]

let test_bind_agg_validation () =
  let schema = Medical.schema () in
  (* non-grouped plain column *)
  (try
     ignore (Bind.bind schema "SELECT Country, COUNT(*) FROM Patient");
     Alcotest.fail "expected Bind_error (non-grouped column)"
   with Bind.Bind_error _ -> ());
  (* SUM over a string *)
  (try
     ignore (Bind.bind schema "SELECT SUM(Name) FROM Doctor");
     Alcotest.fail "expected Bind_error (SUM over CHAR)"
   with Bind.Bind_error _ -> ());
  (* valid: base projections are group cols then args *)
  let q = Bind.bind schema "SELECT Country, AVG(Age) FROM Patient GROUP BY Country" in
  check
    Alcotest.(list (pair string string))
    "base projections"
    [ ("Patient", "Country"); ("Patient", "Age") ]
    q.Bind.projections;
  check Alcotest.bool "aggregate present" true (q.Bind.aggregate <> None)

(* ---- Aggregate.apply semantics on hand-made rows ---- *)

let spec_global aggs output = { Aggregate.group_by = []; aggs; output }

let test_apply_count_star () =
  let spec =
    spec_global
      [ { Aggregate.a_fn = Aggregate.Count; a_arg = None; a_arg_pos = None } ]
      [ `Agg 0 ]
  in
  let rows = [ [| Value.Int 1 |]; [| Value.Int 2 |]; [| Value.Null |] ] in
  (match Aggregate.apply spec rows with
   | [ [| Value.Int 3 |] ] -> ()
   | _ -> Alcotest.fail "COUNT(*) counts every row, nulls included");
  (* empty input still yields one global row *)
  match Aggregate.apply spec [] with
  | [ [| Value.Int 0 |] ] -> ()
  | _ -> Alcotest.fail "COUNT(*) over empty input is 0"

let test_apply_null_semantics () =
  let agg fn = { Aggregate.a_fn = fn; a_arg = None; a_arg_pos = Some 0 } in
  let spec =
    spec_global
      [ agg Aggregate.Count; agg Aggregate.Sum; agg Aggregate.Avg; agg Aggregate.Min ]
      [ `Agg 0; `Agg 1; `Agg 2; `Agg 3 ]
  in
  let rows = [ [| Value.Int 10 |]; [| Value.Null |]; [| Value.Int 20 |] ] in
  (match Aggregate.apply spec rows with
   | [ [| Value.Int 2; Value.Int 30; Value.Float avg; Value.Int 10 |] ] ->
     check (Alcotest.float 1e-9) "avg ignores nulls" 15.0 avg
   | _ -> Alcotest.fail "null semantics wrong");
  (* all-null input: COUNT 0, others NULL *)
  match Aggregate.apply spec [ [| Value.Null |] ] with
  | [ [| Value.Int 0; Value.Null; Value.Null; Value.Null |] ] -> ()
  | _ -> Alcotest.fail "aggregates over all-null input"

let test_apply_group_by () =
  let spec =
    {
      Aggregate.group_by = [ ("T", "g") ];
      aggs = [ { Aggregate.a_fn = Aggregate.Sum; a_arg = None; a_arg_pos = Some 1 } ];
      output = [ `Group 0; `Agg 0 ];
    }
  in
  let rows =
    [
      [| Value.Str "a"; Value.Int 1 |];
      [| Value.Str "b"; Value.Int 10 |];
      [| Value.Str "a"; Value.Int 2 |];
    ]
  in
  let out = Reference.sort_rows (Aggregate.apply spec rows) in
  match out with
  | [ [| Value.Str "a"; Value.Int 3 |]; [| Value.Str "b"; Value.Int 10 |] ] -> ()
  | _ -> Alcotest.fail "group-by sums wrong"

let test_apply_min_max_dates () =
  let agg fn = { Aggregate.a_fn = fn; a_arg = None; a_arg_pos = Some 0 } in
  let spec = spec_global [ agg Aggregate.Min; agg Aggregate.Max ] [ `Agg 0; `Agg 1 ] in
  let rows = [ [| Value.Date 100 |]; [| Value.Date 50 |]; [| Value.Date 75 |] ] in
  match Aggregate.apply spec rows with
  | [ [| Value.Date 50; Value.Date 100 |] ] -> ()
  | _ -> Alcotest.fail "min/max over dates"

let test_sum_mixes_to_float () =
  let agg = { Aggregate.a_fn = Aggregate.Sum; a_arg = None; a_arg_pos = Some 0 } in
  let spec = spec_global [ agg ] [ `Agg 0 ] in
  match Aggregate.apply spec [ [| Value.Int 1 |]; [| Value.Float 0.5 |] ] with
  | [ [| Value.Float f |] ] -> check (Alcotest.float 1e-9) "mixed sum" 1.5 f
  | _ -> Alcotest.fail "mixed int/float sum should be float"

(* ---- end-to-end on the device ---- *)

let instance =
  lazy
    (let rows = Medical.generate Medical.tiny in
     let db = Ghost_db.of_schema (Medical.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let agg_queries = [
  "SELECT COUNT(*) FROM Prescription Pre WHERE Pre.Quantity > 5";
  "SELECT COUNT(*), AVG(Pre.Quantity) FROM Prescription Pre, Visit Vis WHERE \
   Vis.Purpose = 'Checkup' AND Pre.VisID = Vis.VisID";
  "SELECT Med.Type, COUNT(*), MAX(Pre.Quantity) FROM Medicine Med, Prescription Pre \
   WHERE Med.MedID = Pre.MedID GROUP BY Med.Type";
  "SELECT Pat.Country, MIN(Pat.Age), AVG(Pat.Age) FROM Patient Pat GROUP BY \
   Pat.Country";
  "SELECT Vis.Date, COUNT(*) FROM Visit Vis, Prescription Pre WHERE Vis.Purpose = \
   'Diabetes' AND Pre.VisID = Vis.VisID GROUP BY Vis.Date";
]

let test_engine_agg_matches_reference () =
  let db, refdb = Lazy.force instance in
  List.iter
    (fun sql ->
       let q = Ghost_db.bind db sql in
       let expected = Reference.run (Ghost_db.schema db) refdb q in
       let panel = Ghost_db.plans db sql in
       List.iter
         (fun (plan, _) ->
            let r = Ghost_db.run_plan db plan in
            if not (rows_equal r.Exec.rows expected) then
              Alcotest.failf "aggregate mismatch for %s under plan [%s]" sql
                plan.Plan.label)
         panel)
    agg_queries

let test_count_star_equals_row_count () =
  (* independent cross-check: the star count equals the cardinality of
     the corresponding non-aggregate query *)
  let db, _ = Lazy.force instance in
  let base =
    Ghost_db.query db
      "SELECT Pre.PreID FROM Prescription Pre, Visit Vis WHERE Vis.Purpose = \
       'Checkup' AND Pre.VisID = Vis.VisID"
  in
  let agg =
    Ghost_db.query db
      "SELECT COUNT(*) FROM Prescription Pre, Visit Vis WHERE Vis.Purpose = \
       'Checkup' AND Pre.VisID = Vis.VisID"
  in
  match agg.Exec.rows with
  | [ [| Value.Int n |] ] -> check Alcotest.int "count = rows" base.Exec.row_count n
  | _ -> Alcotest.fail "COUNT(*) shape"

let test_agg_results_stay_private () =
  let db, _ = Lazy.force instance in
  Ghost_db.clear_trace db;
  List.iter (fun sql -> ignore (Ghost_db.query db sql)) agg_queries;
  let verdict = Ghost_db.audit db in
  check Alcotest.bool "aggregates leak nothing" true verdict.Ghostdb.Privacy.ok

let suite = [
  Alcotest.test_case "parse aggregates" `Quick test_parse_aggregates;
  Alcotest.test_case "parse aggregate errors" `Quick test_parse_agg_errors;
  Alcotest.test_case "bind validation" `Quick test_bind_agg_validation;
  Alcotest.test_case "COUNT(*) semantics" `Quick test_apply_count_star;
  Alcotest.test_case "NULL semantics" `Quick test_apply_null_semantics;
  Alcotest.test_case "GROUP BY" `Quick test_apply_group_by;
  Alcotest.test_case "MIN/MAX over dates" `Quick test_apply_min_max_dates;
  Alcotest.test_case "mixed SUM is float" `Quick test_sum_mixes_to_float;
  Alcotest.test_case "engine aggregates = reference (all plans)" `Slow
    test_engine_agg_matches_reference;
  Alcotest.test_case "COUNT(*) equals row count" `Quick test_count_star_equals_row_count;
  Alcotest.test_case "aggregates pass the privacy audit" `Quick
    test_agg_results_stay_private;
]
