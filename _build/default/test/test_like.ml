(* LIKE prefix predicates: semantics, index range scans, planner
   integration. *)

module Value = Ghost_kernel.Value
module Predicate = Ghost_relation.Predicate
module Parser = Ghost_sql.Parser
module Bind = Ghost_sql.Bind
module Medical = Ghost_workload.Medical
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan

let check = Alcotest.check

let instance =
  lazy
    (let rows = Medical.generate Medical.tiny in
     let db = Ghost_db.of_schema (Medical.schema ()) rows in
     let refdb = Reference.db_of_rows (Ghost_db.schema db) rows in
     (db, refdb))

let test_prefix_eval () =
  let open Predicate in
  check Alcotest.bool "match" true (eval (Prefix "Dia") (Value.Str "Diabetes"));
  check Alcotest.bool "exact" true (eval (Prefix "Diabetes") (Value.Str "Diabetes"));
  check Alcotest.bool "longer" false (eval (Prefix "Diabetesx") (Value.Str "Diabetes"));
  check Alcotest.bool "no match" false (eval (Prefix "Dia") (Value.Str "Checkup"));
  check Alcotest.bool "padding normalized" true
    (eval (Prefix "Dia") (Value.Str "Diabetes\000\000"));
  check Alcotest.bool "non-string" false (eval (Prefix "1") (Value.Int 1));
  check Alcotest.bool "empty prefix matches all strings" true
    (eval (Prefix "") (Value.Str "x"))

let test_prefix_upper () =
  check Alcotest.(option string) "simple" (Some "abd") (Predicate.prefix_upper "abc");
  check Alcotest.(option string) "carry" (Some "b") (Predicate.prefix_upper "a\xff");
  check Alcotest.(option string) "all-ff" None (Predicate.prefix_upper "\xff\xff")

let test_parse_and_bind () =
  let schema = Medical.schema () in
  let q =
    Bind.bind schema "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose LIKE 'Dia%'"
  in
  (match q.Bind.selections with
   | [ { Predicate.cmp = Predicate.Prefix "Dia"; _ } ] -> ()
   | _ -> Alcotest.fail "LIKE not bound to Prefix");
  (* pattern without % degrades to equality *)
  let q2 =
    Bind.bind schema "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose LIKE 'Checkup'"
  in
  (match q2.Bind.selections with
   | [ { Predicate.cmp = Predicate.Eq (Value.Str "Checkup"); _ } ] -> ()
   | _ -> Alcotest.fail "bare LIKE not equality");
  List.iter
    (fun sql ->
       try
         ignore (Bind.bind schema sql);
         Alcotest.fail ("expected rejection: " ^ sql)
       with Bind.Bind_error _ | Parser.Parse_error _ -> ())
    [
      "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose LIKE '%uro%'";
      "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose LIKE 'a_c'";
      "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose LIKE ''";
      "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Date LIKE '2006%'";
      "SELECT Vis.VisID FROM Visit Vis WHERE Vis.Purpose LIKE 42";
    ]

let test_like_hidden_all_plans () =
  let db, refdb = Lazy.force instance in
  (* 'A%' spans several purposes (Asthma, Allergy, Arthritis, Anemia) -
     a real index range scan *)
  let sql =
    "SELECT Vis.VisID, Vis.Purpose FROM Visit Vis WHERE Vis.Purpose LIKE 'A%'"
  in
  let q = Ghost_db.bind db sql in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  check Alcotest.bool "range matches something" true (expected <> []);
  List.iter
    (fun (plan, _) ->
       let r = Ghost_db.run_plan db plan in
       if Reference.sort_rows r.Exec.rows <> Reference.sort_rows expected then
         Alcotest.failf "LIKE plan [%s] wrong" plan.Plan.label)
    (Ghost_db.plans db sql)

let test_like_visible_and_joined () =
  let db, refdb = Lazy.force instance in
  let sql =
    "SELECT Med.Name, Pre.Quantity FROM Medicine Med, Prescription Pre WHERE \
     Med.Type LIKE 'Anti%' AND Pre.Quantity > 5 AND Med.MedID = Pre.MedID"
  in
  let q = Ghost_db.bind db sql in
  let expected = Reference.run (Ghost_db.schema db) refdb q in
  List.iter
    (fun (plan, _) ->
       let r = Ghost_db.run_plan db plan in
       if Reference.sort_rows r.Exec.rows <> Reference.sort_rows expected then
         Alcotest.failf "visible LIKE plan [%s] wrong" plan.Plan.label)
    (Ghost_db.plans db sql)

let suite = [
  Alcotest.test_case "prefix eval" `Quick test_prefix_eval;
  Alcotest.test_case "prefix upper bound" `Quick test_prefix_upper;
  Alcotest.test_case "parse + bind" `Quick test_parse_and_bind;
  Alcotest.test_case "hidden LIKE through all plans" `Quick test_like_hidden_all_plans;
  Alcotest.test_case "visible LIKE with join" `Quick test_like_visible_and_joined;
]
