(* Deletes (tombstones) and offline reorganization. *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Ram = Ghost_device.Ram
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Reference = Ghost_workload.Reference
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Insert = Ghostdb.Insert

let check = Alcotest.check

let make () =
  let rows = Medical.generate Medical.tiny in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  (db, rows)

let rows_equal got expected = Reference.sort_rows got = Reference.sort_rows expected

let without_prescriptions ids rows =
  List.map
    (fun (name, rs) ->
       if name <> "Prescription" then (name, rs)
       else
         ( name,
           List.filter
             (fun row ->
                match row.(0) with
                | Value.Int id -> not (List.mem id ids)
                | _ -> true)
             rs ))
    rows

let test_deleted_rows_invisible_all_plans () =
  let db, rows = make () in
  let victims = [ 1; 2; 50; 399; 400 ] in
  Ghost_db.delete db victims;
  check Alcotest.int "tombstones" 5 (Ghost_db.tombstone_count db);
  let refdb =
    Reference.db_of_rows (Ghost_db.schema db) (without_prescriptions victims rows)
  in
  List.iter
    (fun (name, sql) ->
       let q = Ghost_db.bind db sql in
       let expected = Reference.run (Ghost_db.schema db) refdb q in
       List.iter
         (fun (plan, _) ->
            let r = Ghost_db.run_plan db plan in
            if not (rows_equal r.Exec.rows expected) then
              Alcotest.failf "%s after deletes: plan [%s] wrong" name plan.Plan.label)
         (Ghost_db.plans db sql))
    Queries.all

let test_delete_validation () =
  let db, _ = make () in
  Ghost_db.delete db [ 7 ];
  (try
     Ghost_db.delete db [ 7 ];
     Alcotest.fail "expected already-deleted error"
   with Insert.Insert_error _ -> ());
  (try
     Ghost_db.delete db [ 0 ];
     Alcotest.fail "expected range error"
   with Insert.Insert_error _ -> ());
  (try
     Ghost_db.delete db [ 9; 9 ];
     Alcotest.fail "expected duplicate error"
   with Insert.Insert_error _ -> ());
  check Alcotest.int "only the first delete applied" 1 (Ghost_db.tombstone_count db)

let test_delete_then_insert () =
  let db, _ = make () in
  Ghost_db.delete db [ 10; 20 ];
  (* ids are not reused before reorganization: the next insert key
     continues from total_count *)
  let next = Medical.tiny.Medical.prescriptions + 1 in
  Ghost_db.insert db
    [ [| Value.Int next; Value.Int 5; Value.Int 2; Value.Date Medical.date_lo;
         Value.Int 1; Value.Int 1 |] ];
  let count_sql = "SELECT COUNT(*) FROM Prescription Pre" in
  match (Ghost_db.query db count_sql).Exec.rows with
  | [ [| Value.Int n |] ] ->
    check Alcotest.int "400 - 2 + 1" (Medical.tiny.Medical.prescriptions - 2 + 1) n
  | _ -> Alcotest.fail "count shape"

let test_delete_a_delta_row () =
  let db, _ = make () in
  let next = Medical.tiny.Medical.prescriptions + 1 in
  Ghost_db.insert db
    [ [| Value.Int next; Value.Int 5; Value.Int 2; Value.Date Medical.date_lo;
         Value.Int 1; Value.Int 1 |] ];
  Ghost_db.delete db [ next ];
  match (Ghost_db.query db "SELECT COUNT(*) FROM Prescription Pre").Exec.rows with
  | [ [| Value.Int n |] ] ->
    check Alcotest.int "back to loaded count" Medical.tiny.Medical.prescriptions n
  | _ -> Alcotest.fail "count shape"

let test_reorganize_compacts_and_answers () =
  let db, _ = make () in
  (* churn: insert 40, delete 25 spread over main and delta *)
  let rng = Rng.create 11 in
  let next = Medical.tiny.Medical.prescriptions + 1 in
  Ghost_db.insert db
    (List.init 40 (fun i ->
       [| Value.Int (next + i); Value.Int (Rng.int_in rng 1 10);
          Value.Int (Rng.int_in rng 1 4);
          Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
          Value.Int (1 + Rng.int rng Medical.tiny.Medical.medicines);
          Value.Int (1 + Rng.int rng Medical.tiny.Medical.visits) |]));
  Ghost_db.delete db [ 3; 17; 120; next; next + 5 ];
  Ghost_db.delete db (List.init 20 (fun i -> 200 + i));
  let live = Medical.tiny.Medical.prescriptions + 40 - 25 in
  let count db =
    match (Ghost_db.query db "SELECT COUNT(*) FROM Prescription Pre").Exec.rows with
    | [ [| Value.Int n |] ] -> n
    | _ -> Alcotest.fail "count shape"
  in
  check Alcotest.int "live before reorg" live (count db);
  let fresh = Ghost_db.reorganize db in
  check Alcotest.int "no pending delta" 0 (Ghost_db.delta_count fresh);
  check Alcotest.int "no tombstones" 0 (Ghost_db.tombstone_count fresh);
  check Alcotest.int "live after reorg" live (count fresh);
  (* keys are compact again: max PreID = live count *)
  (match
     (Ghost_db.query fresh
        "SELECT MAX(Pre.PreID), MIN(Pre.PreID) FROM Prescription Pre")
       .Exec.rows
   with
   | [ [| Value.Int mx; Value.Int mn |] ] ->
     check Alcotest.int "dense max" live mx;
     check Alcotest.int "dense min" 1 mn
   | _ -> Alcotest.fail "minmax shape");
  (* non-key content is preserved: quantity histogram identical *)
  let histogram db =
    Reference.sort_rows
      (Ghost_db.query db
         "SELECT Pre.Quantity, COUNT(*) FROM Prescription Pre GROUP BY Pre.Quantity")
        .Exec.rows
  in
  check Alcotest.bool "content preserved" true (histogram db = histogram fresh);
  (* dimension keys are stable: per-country patient counts unchanged *)
  let by_country db =
    Reference.sort_rows
      (Ghost_db.query db
         "SELECT Pat.Country, COUNT(*) FROM Patient Pat GROUP BY Pat.Country")
        .Exec.rows
  in
  check Alcotest.bool "dimensions stable" true (by_country db = by_country fresh)

let test_reorganize_restores_speed () =
  let rows = Medical.generate Medical.small in
  let db = Ghost_db.of_schema (Medical.schema ()) rows in
  let rng = Rng.create 3 in
  let scale = Medical.small in
  let next = scale.Medical.prescriptions + 1 in
  Ghost_db.insert db
    (List.init 1500 (fun i ->
       [| Value.Int (next + i); Value.Int (Rng.int_in rng 1 10);
          Value.Int (Rng.int_in rng 1 4);
          Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
          Value.Int (1 + Rng.int rng scale.Medical.medicines);
          Value.Int (1 + Rng.int rng scale.Medical.visits) |]));
  let slow = (Ghost_db.query db Queries.demo).Exec.elapsed_us in
  let fresh = Ghost_db.reorganize db in
  let fast = (Ghost_db.query fresh Queries.demo).Exec.elapsed_us in
  check Alcotest.bool
    (Printf.sprintf "reorg speeds queries up (%.0f -> %.0f us)" slow fast)
    true (fast < slow)

let test_privacy_with_deletes () =
  let db, _ = make () in
  Ghost_db.delete db [ 5; 6; 7 ];
  Ghost_db.clear_trace db;
  ignore (Ghost_db.query db Queries.demo);
  check Alcotest.bool "leak-free with tombstones" true
    (Ghost_db.audit db).Ghostdb.Privacy.ok;
  check Alcotest.int "ram released" 0 (Ram.in_use (Device.ram (Ghost_db.device db)))

let suite = [
  Alcotest.test_case "deleted rows invisible to every plan" `Slow
    test_deleted_rows_invisible_all_plans;
  Alcotest.test_case "delete validation" `Quick test_delete_validation;
  Alcotest.test_case "delete then insert" `Quick test_delete_then_insert;
  Alcotest.test_case "delete a delta row" `Quick test_delete_a_delta_row;
  Alcotest.test_case "reorganize compacts and answers" `Quick
    test_reorganize_compacts_and_answers;
  Alcotest.test_case "reorganize restores speed" `Quick test_reorganize_restores_speed;
  Alcotest.test_case "privacy with deletes" `Quick test_privacy_with_deletes;
]
