(* Interactive GhostDB shell.

   A line-oriented SQL console over a simulated GhostDB instance:

     dune exec bin/ghostdb_shell.exe                   # small medical db
     dune exec bin/ghostdb_shell.exe -- --scale tiny
     dune exec bin/ghostdb_shell.exe -- --image my.img

   SQL statements run through the optimizer; dot-commands expose the
   demo's machinery:

     .help                 this text
     .plans SQL            the candidate-plan panel with estimates
     .explain SQL          the optimizer's plan, described
     .ops SQL              execute and show per-operator statistics
     .spy                  what a spy observed so far
     .audit                the privacy auditor's verdict
     .storage              flash footprint of the hidden structures
     .delete id[,id...]    tombstone root rows
     .reorganize           fold pending inserts/deletes back in
     .save PATH            write a device image
     .quit *)

module Trace = Ghost_device.Trace
module Medical = Ghost_workload.Medical
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Cost = Ghostdb.Cost
module Privacy = Ghostdb.Privacy
module Spy = Ghost_public.Spy
module Insert = Ghostdb.Insert

let usage = "ghostdb_shell [--scale tiny|small|medium] [--image PATH]"

let parse_args () =
  let scale = ref Medical.small in
  let image = ref None in
  let specs = [
    ("--scale",
     Arg.String
       (fun s ->
          scale :=
            match s with
            | "tiny" -> Medical.tiny
            | "small" -> Medical.small
            | "medium" -> Medical.medium
            | _ -> raise (Arg.Bad ("unknown scale " ^ s))),
     "SCALE tiny|small|medium");
    ("--image", Arg.String (fun p -> image := Some p), "PATH open a saved device image");
  ] in
  Arg.parse (Arg.align specs) (fun s -> raise (Arg.Bad ("unexpected " ^ s))) usage;
  (!scale, !image)

let print_result (r : Exec.result) =
  List.iteri
    (fun i row ->
       if i < 25 then print_endline ("  " ^ Ghost_db.row_to_string row))
    r.Exec.rows;
  if r.Exec.row_count > 25 then Printf.printf "  ... (%d more)\n" (r.Exec.row_count - 25);
  Printf.printf "%d row%s in %.1f ms simulated device time (RAM peak %d B)\n"
    r.Exec.row_count
    (if r.Exec.row_count = 1 then "" else "s")
    (r.Exec.elapsed_us /. 1000.)
    r.Exec.ram_peak

let help () =
  print_string
    "SQL statements execute through the optimizer. Dot-commands:\n\
    \  .plans SQL | .explain SQL | .ops SQL\n\
    \  .spy | .audit | .storage | .delete id[,id...] | .reorganize\n\
    \  .save PATH | .help | .quit\n"

let starts_with prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let arg_of ~cmd line = String.trim (String.sub line (String.length cmd)
                                      (String.length line - String.length cmd))

let rec repl db =
  print_string "ghostdb> ";
  match In_channel.input_line stdin with
  | None -> ()
  | Some line ->
    let line = String.trim line in
    let db =
      try
        if line = "" then db
        else if line = ".quit" || line = ".exit" then raise Exit
        else if line = ".help" then (help (); db)
        else if line = ".spy" then begin
          print_endline (Spy.to_string (Ghost_db.spy_report db));
          db
        end
        else if line = ".audit" then begin
          Format.printf "%a@." Privacy.pp (Ghost_db.audit db);
          db
        end
        else if line = ".storage" then begin
          Format.printf "%a@." Ghostdb.Catalog.pp_storage (Ghost_db.storage db);
          Printf.printf "pending: %d inserted, %d deleted\n" (Ghost_db.delta_count db)
            (Ghost_db.tombstone_count db);
          db
        end
        else if line = ".reorganize" then begin
          let fresh = Ghost_db.reorganize db in
          print_endline "reorganized (logs folded in; root ids compacted)";
          fresh
        end
        else if starts_with ".delete" line then begin
          let ids =
            arg_of ~cmd:".delete" line
            |> String.split_on_char ','
            |> List.map (fun s -> int_of_string (String.trim s))
          in
          Ghost_db.delete db ids;
          Printf.printf "%d row(s) tombstoned\n" (List.length ids);
          db
        end
        else if starts_with ".save" line then begin
          let path = arg_of ~cmd:".save" line in
          Ghost_db.save_image db path;
          Printf.printf "image written to %s\n" path;
          db
        end
        else if starts_with ".plans" line then begin
          let sql = arg_of ~cmd:".plans" line in
          List.iteri
            (fun i (p, est) ->
               Printf.printf "  [%2d] %-70s est %8.1f ms\n" i p.Plan.label
                 (est.Cost.est_time_us /. 1000.))
            (Ghost_db.plans db sql);
          db
        end
        else if starts_with ".explain" line then begin
          let sql = arg_of ~cmd:".explain" line in
          let plan, est = Planner.best (Ghost_db.catalog db) (Ghost_db.bind db sql) in
          print_string (Plan.describe plan);
          Format.printf "%a@." Cost.pp est;
          db
        end
        else if starts_with ".ops" line then begin
          let sql = arg_of ~cmd:".ops" line in
          let r = Ghost_db.query db sql in
          Format.printf "%a" Exec.pp_ops r.Exec.ops;
          print_result r;
          db
        end
        else if line.[0] = '.' then begin
          Printf.printf "unknown command %s (try .help)\n" line;
          db
        end
        else begin
          print_result (Ghost_db.query db line);
          db
        end
      with
      | Exit -> raise Exit
      | Ghost_sql.Parser.Parse_error msg -> Printf.printf "parse error: %s\n" msg; db
      | Ghost_sql.Bind.Bind_error msg -> Printf.printf "bind error: %s\n" msg; db
      | Insert.Insert_error msg -> Printf.printf "error: %s\n" msg; db
      | Ghost_db.Image_error msg -> Printf.printf "image error: %s\n" msg; db
      | Failure msg -> Printf.printf "error: %s\n" msg; db
    in
    repl db

let () =
  let scale, image = parse_args () in
  let db =
    match image with
    | Some path ->
      Printf.printf "opening image %s...\n%!" path;
      Ghost_db.load_image path
    | None ->
      Printf.printf "loading the %d-prescription medical database...\n%!"
        scale.Medical.prescriptions;
      Ghost_db.of_schema (Medical.schema ()) (Medical.generate scale)
  in
  print_endline "GhostDB shell - the device is simulated; type .help for commands.";
  try repl db with Exit -> print_endline "bye"
