(* The three-phase demonstration of the paper (Section 5), as a CLI:

   phase 1  `security` - run a query and show what a Trojan horse on
            the terminal would observe on every link, plus the
            auditor's verdict;
   phase 2  `plans`    - build and evaluate alternative query execution
            plans, with per-operator statistics (the Figure 6 GUI);
   phase 3  `game`     - guess the fastest plan, then see the ranking.

   The device is a software simulator - as in the original demo, whose
   GUI "must run on a software simulator because the hardware device is
   by design unobservable". *)

module Trace = Ghost_device.Trace
module Device = Ghost_device.Device
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Cost = Ghostdb.Cost
module Exec = Ghostdb.Exec
module Privacy = Ghostdb.Privacy
module Spy = Ghost_public.Spy
open Cmdliner

let scale_conv =
  let parse = function
    | "tiny" -> Ok Medical.tiny
    | "small" -> Ok Medical.small
    | "medium" -> Ok Medical.medium
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S" s))
  in
  Arg.conv (parse, fun fmt (s : Medical.scale) ->
    Format.fprintf fmt "%d" s.Medical.prescriptions)

let scale_arg =
  Arg.(value & opt scale_conv Medical.small
       & info [ "scale" ] ~docv:"SCALE" ~doc:"tiny, small (default) or medium.")

let query_arg =
  Arg.(value & opt string "demo"
       & info [ "query" ] ~docv:"QUERY"
           ~doc:"A named query (demo, hidden_only, visible_only, deep_climb, \
                 doctor_patient, range_hidden, single_table_visible, five_way) or raw \
                 SQL.")

let resolve_query name =
  match List.assoc_opt name Queries.all with
  | Some sql -> sql
  | None -> name

let make_db scale =
  Printf.printf "loading the %d-prescription medical database (Figure 3 schema)...\n%!"
    scale.Medical.prescriptions;
  Ghost_db.of_schema (Medical.schema ()) (Medical.generate scale)

(* ---- phase 1 ---- *)

let security scale query =
  let db = make_db scale in
  let sql = resolve_query query in
  Printf.printf "\n-- query --\n%s\n\n" sql;
  Ghost_db.clear_trace db;
  let r = Ghost_db.query db sql in
  Printf.printf "-- results (%d rows, via the secure display channel only) --\n"
    r.Exec.row_count;
  List.iteri
    (fun i row -> if i < 10 then Printf.printf "  %s\n" (Ghost_db.row_to_string row))
    r.Exec.rows;
  if r.Exec.row_count > 10 then Printf.printf "  ... (%d more)\n" (r.Exec.row_count - 10);
  Printf.printf "\n-- every message a spy can observe --\n";
  List.iter
    (fun e ->
       if Trace.spy_visible e.Trace.link then
         Format.printf "  %a@." Trace.pp_event e)
    (Trace.events (Ghost_db.trace db));
  Printf.printf "\n-- spy summary --\n%s\n" (Spy.to_string (Ghost_db.spy_report db));
  Format.printf "@.%a@." Privacy.pp (Ghost_db.audit db)

(* ---- phase 2 ---- *)

let plans scale query =
  let db = make_db scale in
  let sql = resolve_query query in
  let cat = Ghost_db.catalog db in
  let q = Ghost_db.bind db sql in
  Printf.printf "\n-- query --\n%s\n\n" sql;
  let named =
    [
      ("P1 all-Pre", Planner.all_pre cat q);
      ("P2 all-Post", Planner.all_post cat q);
      ("P3 Cross", Planner.cross cat q);
      ("P4 optimizer", fst (Planner.best cat q));
    ]
  in
  List.iter
    (fun (name, plan) ->
       Printf.printf "==== %s ====\n%s" name (Plan.describe plan);
       let est = Cost.estimate cat plan in
       let r = Ghost_db.run_plan db plan in
       Printf.printf "estimated %.1f ms | executed %.1f ms | %d rows | RAM peak %d B\n"
         (est.Cost.est_time_us /. 1000.)
         (r.Exec.elapsed_us /. 1000.)
         r.Exec.row_count r.Exec.ram_peak;
       Format.printf "%a@." Exec.pp_ops r.Exec.ops)
    named;
  Printf.printf "full panel: %d candidate plans (use `game` to explore them)\n"
    (List.length (Planner.enumerate cat q))

(* ---- phase 3 ---- *)

let game scale query guess =
  let db = make_db scale in
  let sql = resolve_query query in
  let cat = Ghost_db.catalog db in
  let q = Ghost_db.bind db sql in
  let panel = Planner.enumerate cat q in
  Printf.printf "\n-- query --\n%s\n\n" sql;
  Printf.printf "pick the fastest of these %d plans:\n" (List.length panel);
  List.iteri (fun i p -> Printf.printf "  [%2d] %s\n" i p.Plan.label) panel;
  let pick =
    match guess with
    | Some g -> g
    | None ->
      Printf.printf "\nyour guess [0-%d]: %!" (List.length panel - 1);
      (try int_of_string (String.trim (input_line stdin)) with _ -> 0)
  in
  let timed =
    List.mapi
      (fun i p -> (i, p, (Ghost_db.run_plan db p).Exec.elapsed_us))
      panel
  in
  let ranking = List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b) timed in
  Printf.printf "\n-- ranking (simulated device time) --\n";
  List.iteri
    (fun rank (i, p, t) ->
       Printf.printf "  #%d  [%2d] %-60s %10.1f ms%s\n" (rank + 1) i p.Plan.label
         (t /. 1000.)
         (if i = pick then "   <- your pick" else ""))
    ranking;
  (match ranking with
   | (w, _, _) :: _ when w = pick -> Printf.printf "\nyou win the prize!\n"
   | (w, _, best) :: _ ->
     let _, _, yours = List.find (fun (i, _, _) -> i = pick) timed in
     Printf.printf "\nplan %d was fastest; your pick was %.1fx slower.\n" w
       (yours /. best)
   | [] -> ())

(* ---- command line ---- *)

let security_cmd =
  Cmd.v
    (Cmd.info "security" ~doc:"phase 1: watch the links while a query runs")
    Term.(const security $ scale_arg $ query_arg)

let plans_cmd =
  Cmd.v
    (Cmd.info "plans" ~doc:"phase 2: compare query execution plans and operators")
    Term.(const plans $ scale_arg $ query_arg)

let guess_arg =
  Arg.(value & opt (some int) None
       & info [ "guess" ] ~docv:"N" ~doc:"Non-interactive plan guess.")

let game_cmd =
  Cmd.v
    (Cmd.info "game" ~doc:"phase 3: find the fastest plan for a query")
    Term.(const game $ scale_arg $ query_arg $ guess_arg)

let () =
  let doc = "GhostDB demonstration (VLDB 2007), on a simulated smart USB device" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "ghostdb_demo" ~doc)
          [ security_cmd; plans_cmd; game_cmd ]))
