(* Plan explorer: the demo's phases 2-3 as a batch run.

   Enumerates the whole Pre/Post/Cross strategy panel for the paper's
   Section 4 query, prints the cost model's estimate next to the
   simulated execution time of every plan, and shows the per-operator
   breakdown for the best and worst plans.

   dune exec examples/plan_explorer.exe *)

module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Plan = Ghostdb.Plan
module Planner = Ghostdb.Planner
module Cost = Ghostdb.Cost
module Exec = Ghostdb.Exec

let () =
  let db = Ghost_db.of_schema (Medical.schema ()) (Medical.generate Medical.small) in
  let sql = Queries.demo in
  let cat = Ghost_db.catalog db in
  let q = Ghost_db.bind db sql in
  Printf.printf "query:\n%s\n\n" sql;

  let panel = Planner.with_estimates cat q in
  Printf.printf "%d candidate plans (estimate order):\n\n" (List.length panel);
  Printf.printf "  %-64s %12s %12s\n" "strategy" "estimated" "executed";
  let timed =
    List.map
      (fun (plan, est) ->
         let r = Ghost_db.run_plan db plan in
         Printf.printf "  %-64s %9.1f ms %9.1f ms\n" plan.Plan.label
           (est.Cost.est_time_us /. 1000.)
           (r.Exec.elapsed_us /. 1000.);
         (plan, r))
      panel
  in
  let by_time =
    List.sort
      (fun (_, a) (_, b) -> Float.compare a.Exec.elapsed_us b.Exec.elapsed_us)
      timed
  in
  (match by_time, List.rev by_time with
   | (best, rb) :: _, (worst, rw) :: _ ->
     Printf.printf "\nbest plan [%s]:\n" best.Plan.label;
     Format.printf "%a@." Exec.pp_ops rb.Exec.ops;
     Printf.printf "worst plan [%s] (%.1fx slower):\n" worst.Plan.label
       (rw.Exec.elapsed_us /. rb.Exec.elapsed_us);
     Format.printf "%a@." Exec.pp_ops rw.Exec.ops;
     let picked, _ = List.hd timed in
     Printf.printf "the optimizer picked [%s]; fastest measured was [%s] - %s\n"
       picked.Plan.label best.Plan.label
       (if picked.Plan.label = best.Plan.label then "spot on"
        else "close enough to win the demo game?")
   | _, _ -> ())
