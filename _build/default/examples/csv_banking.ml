(* Loading your own data: a private-banking scenario from CSV.

   Account balances and owner identities are hidden; branch metadata
   and transaction dates are public. The CSV loader types each field
   against the schema, then GhostDB splits the columns as usual.

   dune exec examples/csv_banking.exe *)

module Csv_load = Ghost_workload.Csv_load
module Bind = Ghost_sql.Bind
module Parser = Ghost_sql.Parser
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec

let ddl = {|
CREATE TABLE Branch (
  BranchID INTEGER PRIMARY KEY,
  City CHAR(16),
  Country CHAR(16));

CREATE TABLE Account (
  AccountID INTEGER PRIMARY KEY,
  Owner CHAR(24) HIDDEN,
  Balance FLOAT HIDDEN,
  Opened DATE,
  BranchID INTEGER REFERENCES Branch(BranchID) HIDDEN);

CREATE TABLE Movement (
  MovID INTEGER PRIMARY KEY,
  Date DATE,
  Amount FLOAT HIDDEN,
  Kind CHAR(12),
  AccountID INTEGER REFERENCES Account(AccountID) HIDDEN);
|}

let branches_csv = {|
BranchID,City,Country
1,Geneva,Switzerland
2,Zurich,Switzerland
3,Paris,France
|}

let accounts_csv = {|
AccountID,Owner,Balance,Opened,BranchID
1,Greta Keller,1250000.0,2001-05-14,1
2,Henri Laurent,85000.5,2003-02-01,3
3,Ines Moreau,430200.0,2002-11-30,3
4,Jonas Weber,9800.0,2004-07-22,2
5,Klara Frey,2750000.0,2000-01-09,1
|}

let movements_csv = {|
MovID,Date,Amount,Kind,AccountID
1,2006-01-05,15000.0,transfer,1
2,2006-01-12,-2000.0,withdrawal,2
3,2006-02-01,120000.0,transfer,5
4,2006-02-15,-500.0,withdrawal,4
5,2006-03-01,33000.0,transfer,3
6,2006-03-09,-12000.0,withdrawal,1
7,2006-04-20,8000.0,transfer,2
8,2006-05-02,95000.0,transfer,5
|}

let () =
  let schema = Bind.ddl_to_schema (Parser.parse_ddl ddl) in
  let table name csv = (name, Csv_load.parse_table schema ~table:name csv) in
  let db =
    Ghost_db.of_schema schema
      [ table "Branch" branches_csv; table "Account" accounts_csv;
        table "Movement" movements_csv ]
  in
  let show title sql =
    let r = Ghost_db.query db sql in
    Printf.printf "\n%s\n" title;
    List.iter (fun row -> Printf.printf "  %s\n" (Ghost_db.row_to_string row)) r.Exec.rows;
    Printf.printf "  (%.1f ms simulated device time)\n" (r.Exec.elapsed_us /. 1000.)
  in
  show "large 2006 transfers, with the hidden owner:"
    {|SELECT Acc.Owner, Mov.Amount, Mov.Date
      FROM Account Acc, Movement Mov
      WHERE Mov.Kind = 'transfer' AND Mov.Amount > 50000.0
        AND Mov.AccountID = Acc.AccountID
      ORDER BY Mov.Date|};
  show "per-branch movement counts (branch city is public, the linkage is not):"
    {|SELECT Br.City, COUNT(*)
      FROM Branch Br, Account Acc, Movement Mov
      WHERE Mov.AccountID = Acc.AccountID AND Acc.BranchID = Br.BranchID
      GROUP BY Br.City ORDER BY Br.City|};
  let verdict = Ghost_db.audit db in
  Printf.printf "\nprivacy audit: %s\n"
    (if verdict.Ghostdb.Privacy.ok then
       "OK - owners, balances and account linkage never crossed a public link"
     else "VIOLATION")
