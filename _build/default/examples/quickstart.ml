(* Quickstart: declare a schema with HIDDEN columns, load a few rows,
   run a query that mixes visible and hidden data.

   dune exec examples/quickstart.exe *)

module Value = Ghost_kernel.Value
module Date = Ghost_kernel.Date
module Ghost_db = Ghostdb.Ghost_db
module Exec = Ghostdb.Exec

(* The security administrator hides the diagnosis and the link between
   visits and patients; everything else may live on the public
   server. Only the DDL changes - queries are plain SQL. *)
let ddl = {|
CREATE TABLE Patient (
  PatID INTEGER PRIMARY KEY,
  Name CHAR(20) HIDDEN,
  City CHAR(16));

CREATE TABLE Visit (
  VisID INTEGER PRIMARY KEY,
  Date DATE,
  Diagnosis CHAR(24) HIDDEN,
  PatID INTEGER REFERENCES Patient(PatID) HIDDEN);
|}

let d = Date.of_string

let patients = [
  [| Value.Int 1; Value.Str "Alice Martin"; Value.Str "Paris" |];
  [| Value.Int 2; Value.Str "Bruno Keller"; Value.Str "Lyon" |];
  [| Value.Int 3; Value.Str "Chloe Durand"; Value.Str "Paris" |];
]

let visits = [
  [| Value.Int 1; Value.Date (d "2006-03-14"); Value.Str "Diabetes"; Value.Int 1 |];
  [| Value.Int 2; Value.Date (d "2006-07-02"); Value.Str "Influenza"; Value.Int 2 |];
  [| Value.Int 3; Value.Date (d "2006-11-20"); Value.Str "Diabetes"; Value.Int 3 |];
  [| Value.Int 4; Value.Date (d "2006-12-05"); Value.Str "Checkup"; Value.Int 1 |];
]

let () =
  (* Loading splits the data: visible columns go to the public store,
     hidden columns (and all keys) to the simulated smart USB device. *)
  let db = Ghost_db.create ~ddl [ ("Patient", patients); ("Visit", visits) ] in

  (* The query text mentions hidden and visible columns alike. *)
  let sql = {|
    SELECT Pat.Name, Vis.Date
    FROM Patient Pat, Visit Vis
    WHERE Vis.Diagnosis = 'Diabetes'
      AND Vis.Date > '2006-01-01'
      AND Vis.PatID = Pat.PatID
  |} in
  let result = Ghost_db.query db sql in

  Printf.printf "diabetes visits in 2006:\n";
  List.iter
    (fun row -> Printf.printf "  %s\n" (Ghost_db.row_to_string row))
    result.Exec.rows;
  Printf.printf "\nsimulated device time: %.1f ms (RAM peak %d B of %d B)\n"
    (result.Exec.elapsed_us /. 1000.)
    result.Exec.ram_peak
    (Ghost_device.Ram.budget (Ghost_device.Device.ram (Ghost_db.device db)));

  (* Nothing hidden ever left the device: *)
  let verdict = Ghost_db.audit db in
  Printf.printf "privacy audit: %s\n"
    (if verdict.Ghostdb.Privacy.ok then "OK - no hidden data on any spy-visible link"
     else "VIOLATION")
