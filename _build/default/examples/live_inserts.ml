(* Live inserts: new prescriptions arrive while the doctor keeps
   querying.

   New facts append to a Flash-resident delta log (NAND forbids
   rewriting the SKTs and climbing indexes in place); queries scan the
   log next to the indexed structures, so results are immediately
   fresh. The growing log slowly taxes every query - the output below
   shows when an offline reorganization (a reload in the secure
   setting) pays off.

   dune exec examples/live_inserts.exe *)

module Value = Ghost_kernel.Value
module Rng = Ghost_kernel.Rng
module Medical = Ghost_workload.Medical
module Queries = Ghost_workload.Queries
module Ghost_db = Ghostdb.Ghost_db
module Catalog = Ghostdb.Catalog
module Exec = Ghostdb.Exec

let scale = Medical.small

let fresh_prescriptions db rng n =
  let next = Catalog.total_count (Ghost_db.catalog db) "Prescription" + 1 in
  List.init n (fun i ->
    [|
      Value.Int (next + i);
      Value.Int (Rng.int_in rng 1 10);
      Value.Int (Rng.int_in rng 1 4);
      Value.Date (Rng.int_in rng Medical.date_lo Medical.date_hi);
      Value.Int (1 + Rng.int rng scale.Medical.medicines);
      Value.Int (1 + Rng.int rng scale.Medical.visits);
    |])

let count_prescriptions db =
  match (Ghost_db.query db "SELECT COUNT(*) FROM Prescription Pre").Exec.rows with
  | [ [| Value.Int n |] ] -> n
  | _ -> assert false

let () =
  let rng = Rng.create 2007 in
  let db = Ghost_db.of_schema (Medical.schema ()) (Medical.generate scale) in
  Printf.printf "loaded %d prescriptions\n" (count_prescriptions db);
  Printf.printf "\n%8s %12s %14s %12s %10s\n" "pending" "insert/row" "demo query"
    "log (live)" "log (dead)";
  let baseline = (Ghost_db.query db Queries.demo).Exec.elapsed_us in
  List.iter
    (fun batch ->
       let device = Ghost_db.device db in
       let t0 = Ghost_device.Device.elapsed_us device in
       Ghost_db.insert db (fresh_prescriptions db rng batch);
       let per_row =
         (Ghost_device.Device.elapsed_us device -. t0) /. Float.of_int batch
       in
       let q = (Ghost_db.query db Queries.demo).Exec.elapsed_us in
       let log = Catalog.delta (Ghost_db.catalog db) "Prescription" in
       let live, dead =
         match log with
         | Some l -> (Ghostdb.Delta_log.size_bytes l, Ghostdb.Delta_log.dead_bytes l)
         | None -> (0, 0)
       in
       Printf.printf "%8d %9.0f us %11.1f ms %10d B %8d B\n"
         (Ghost_db.delta_count db) per_row (q /. 1000.) live dead)
    [ 50; 200; 750; 2000 ];
  Printf.printf
    "\nfresh-load query time was %.1f ms: once the delta tax dominates, reorganize\n\
     (reload in the secure setting, folding the log into the SKTs and indexes).\n"
    (baseline /. 1000.);
  Printf.printf "total prescriptions now: %d\n" (count_prescriptions db);
  let verdict = Ghost_db.audit db in
  Printf.printf "privacy audit after all of it: %s\n"
    (if verdict.Ghostdb.Privacy.ok then "OK" else "VIOLATION")
