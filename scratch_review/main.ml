module Wire = Ghost_wire.Wire
module Codec = Ghost_kernel.Codec

let () =
  (* hand-build a compact frame: magic, op_id_list, inline label "t",
     count=2, delta0 = 5, delta1 = a 9-byte varint decoding negative *)
  let buf = Buffer.create 64 in
  Buffer.add_char buf '\xC7';
  Buffer.add_char buf '\x02';            (* op_id_list *)
  Buffer.add_char buf '\x00';            (* label tag 0: inline def *)
  Buffer.add_char buf '\x01';            (* name len 1 *)
  Buffer.add_char buf 't';
  Buffer.add_char buf '\x02';            (* count = 2 *)
  Buffer.add_char buf '\x05';            (* delta0 = 5 -> id 5 *)
  (* delta1: 9-byte varint with top byte 0x40 -> bit62 set -> negative *)
  for _ = 1 to 8 do Buffer.add_char buf '\x80' done;
  Buffer.add_char buf '\x40';
  let body = Buffer.contents buf in
  let crc = Codec.crc32 (Bytes.of_string body) ~pos:0 ~len:(String.length body) in
  let frame = Bytes.create (String.length body + 4) in
  Bytes.blit_string body 0 frame 0 (String.length body);
  Codec.put_u32 frame (String.length body) crc;
  let d = Wire.decoder () in
  match Wire.decode_frame d frame ~pos:0 ~len:(Bytes.length frame) with
  | Error e -> Printf.printf "rejected: %s\n" e
  | Ok [ Wire.Id_list { ids; _ } ] ->
    Printf.printf "ACCEPTED ids = [%s]\n"
      (String.concat ";" (Array.to_list (Array.map string_of_int ids)))
  | Ok _ -> print_endline "other"
